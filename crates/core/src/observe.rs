//! Observability plumbing for the figure binaries: `--trace=<path>` /
//! `--metrics=<path>` flag parsing and the probed exemplar run whose
//! trace and metrics they export.
//!
//! Every `fig*` binary accepts:
//!
//! - `--trace=<path>` — write a Chrome `trace_event` JSON file (open it
//!   in <https://ui.perfetto.dev> or `chrome://tracing`) of one probed
//!   exemplar simulation;
//! - `--metrics=<path>` — write the flat metric snapshot of that run,
//!   as CSV (default) or JSON if the path ends in `.json`.
//!
//! The exemplar is a **two-chip** P4 system so the trace carries spans
//! from every subsystem — cpu, cache, mem, *protocol*, and *net* — the
//! latter two only light up when coherence crosses the interconnect.
//! The probed run is an extra simulation; figure results themselves are
//! never produced with a probe attached (and would be bit-identical if
//! they were — see `tests/probe_determinism.rs`).

use std::path::PathBuf;

use piranha_harness::{run_config_parallel_machine, run_config_probed, RunScale};
use piranha_probe::{chrome, ProbeConfig, TraceLevel};
use piranha_system::{
    ArrivalKind, DiurnalCurve, FaultConfig, OverflowPolicy, QueueDiscipline, SystemConfig,
    TopologyKind, TrafficConfig,
};
use piranha_workloads::Workload;

/// The observability flags of a figure binary.
#[derive(Debug, Clone, Default)]
pub struct ProbeCli {
    /// Destination for the Chrome-trace JSON, if requested.
    pub trace: Option<PathBuf>,
    /// Destination for the flat metrics dump, if requested.
    pub metrics: Option<PathBuf>,
}

impl ProbeCli {
    /// Parse `--trace=`/`--metrics=` out of the process arguments.
    pub fn from_env_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse the flags from an explicit argument list; unrelated
    /// arguments (`--quick`, …) are ignored.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut cli = ProbeCli::default();
        for a in args {
            if let Some(p) = a.strip_prefix("--trace=") {
                cli.trace = Some(PathBuf::from(p));
            } else if let Some(p) = a.strip_prefix("--metrics=") {
                cli.metrics = Some(PathBuf::from(p));
            }
        }
        cli
    }

    /// Whether any export was requested.
    pub fn active(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }
}

/// The fault-injection flags of a figure binary (paper §2.7):
///
/// - `--faults=<seed|script>` — a `u64` selects a seeded random
///   schedule; anything else is parsed as a fault script
///   (`"corrupt@50, flap@60, flip1@200"`, …);
/// - `--fault-rate=<f64>` — per-consult injection rate of a seeded
///   schedule (ignored for scripts; default `1e-4`).
#[derive(Debug, Clone, Default)]
pub struct FaultCli {
    /// The raw `--faults=` value, if given.
    pub faults: Option<String>,
    /// The `--fault-rate=` value, if given.
    pub rate: Option<f64>,
}

impl FaultCli {
    /// Parse `--faults=`/`--fault-rate=` out of the process arguments.
    pub fn from_env_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse the flags from an explicit argument list; unrelated
    /// arguments are ignored.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut cli = FaultCli::default();
        for a in args {
            if let Some(v) = a.strip_prefix("--faults=") {
                cli.faults = Some(v.to_string());
            } else if let Some(v) = a.strip_prefix("--fault-rate=") {
                cli.rate = v.parse().ok();
            }
        }
        cli
    }

    /// Whether fault injection was requested at all.
    pub fn active(&self) -> bool {
        self.faults.is_some() || self.rate.is_some()
    }

    /// Resolve the flags into a [`FaultConfig`]. No flags → the
    /// disabled default; a numeric `--faults=` (or `--fault-rate=`
    /// alone, with seed 42) → a seeded schedule; any other `--faults=`
    /// value → a scripted schedule.
    ///
    /// # Errors
    ///
    /// Returns the parse error of a malformed fault script.
    pub fn fault_config(&self) -> Result<FaultConfig, String> {
        let rate = self.rate.unwrap_or(1e-4);
        match &self.faults {
            None if self.rate.is_some() => Ok(FaultConfig::seeded(42, rate)),
            None => Ok(FaultConfig::default()),
            Some(spec) => match spec.trim().parse::<u64>() {
                Ok(seed) => Ok(FaultConfig::seeded(seed, rate)),
                Err(_) => FaultConfig::scripted(spec),
            },
        }
    }
}

/// The parallel-execution flag of a figure binary:
///
/// - `--parallel=<n>` — run every multi-chip machine with `n` lane
///   worker threads (the conservative quantum-stepped engine from
///   `piranha-parsim`). Results are bit-identical to serial at any
///   `n`; only wall-clock changes. Single-chip machines always run the
///   classic serial loop. The harness divides its sweep thread budget
///   by `n` so `sweep threads × lane workers` stays within budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelCli {
    /// The requested lane-worker count, if given.
    pub workers: Option<usize>,
}

impl ParallelCli {
    /// Parse `--parallel=` out of the process arguments.
    pub fn from_env_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse the flag from an explicit argument list; unrelated
    /// arguments are ignored, as is a malformed or zero count.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut cli = ParallelCli::default();
        for a in args {
            if let Some(v) = a.strip_prefix("--parallel=") {
                cli.workers = v.trim().parse::<usize>().ok().filter(|&n| n >= 1);
            }
        }
        cli
    }

    /// Apply the flag to the process-wide harness setting
    /// ([`piranha_harness::set_node_workers`]); a no-op when the flag
    /// was absent.
    pub fn apply(&self) {
        if let Some(w) = self.workers {
            piranha_harness::set_node_workers(w);
        }
    }
}

/// The persistent-result-store flag of a figure binary:
///
/// - `--store=<dir>` — memoize every harness run in a content-addressed
///   on-disk store ([`piranha_serve::DiskStore`]) keyed by the stable
///   `cache_key`, so re-running a figure (or resuming a killed sweep)
///   recomputes only the tuples the store does not hold yet. Results
///   are bit-identical with and without the flag — the store is a
///   cache, never an input; loads that fail verification fall back to
///   recomputation.
///
/// `StoreCli::from_env_args` falls back to the `PIRANHA_STORE`
/// environment variable when the flag is absent, so whole CI jobs can
/// opt in without touching each invocation.
#[derive(Debug, Clone, Default)]
pub struct StoreCli {
    /// The store directory, if requested.
    pub dir: Option<PathBuf>,
}

impl StoreCli {
    /// Parse `--store=` out of the process arguments, falling back to
    /// the `PIRANHA_STORE` environment variable.
    pub fn from_env_args() -> Self {
        let mut cli = Self::parse(std::env::args().skip(1));
        if cli.dir.is_none() {
            cli.dir = std::env::var("PIRANHA_STORE")
                .ok()
                .filter(|s| !s.is_empty())
                .map(PathBuf::from);
        }
        cli
    }

    /// Parse the flag from an explicit argument list (no environment
    /// fallback); unrelated arguments are ignored.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut cli = StoreCli::default();
        for a in args {
            if let Some(v) = a.strip_prefix("--store=") {
                cli.dir = Some(PathBuf::from(v));
            }
        }
        cli
    }

    /// Whether a store was requested.
    pub fn active(&self) -> bool {
        self.dir.is_some()
    }

    /// Open the store and install it as the process-wide default every
    /// subsequently built `Harness` picks up
    /// ([`piranha_serve::install_store`]). Returns the store handle so
    /// the binary can print [`store_summary`] when it is done; `None`
    /// when the flag was absent.
    ///
    /// Exits the process (status 1) if the directory cannot be created
    /// — a mistyped `--store=` silently computing everything from
    /// scratch would defeat the point.
    pub fn apply(&self) -> Option<std::sync::Arc<piranha_serve::DiskStore>> {
        let dir = self.dir.as_ref()?;
        match piranha_serve::install_store(dir) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("cannot open result store {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
}

/// The `--store=` summary line a figure binary prints (to stderr, so
/// diffable stdout contracts like `--fingerprints` stay intact) after
/// its runs: what this process computed versus loaded, and how many
/// entries the store now holds. The CI `serve-smoke` step greps the
/// `computed 0` of a warm second run out of this.
pub fn store_summary(store: &piranha_serve::DiskStore) -> String {
    let (computed, store_hits) = piranha_harness::process_counters();
    format!(
        "result store {}: computed {computed}, loaded {store_hits}; {} entries on disk",
        store.dir().display(),
        store.len(),
    )
}

/// The sampled-execution flag of a figure binary:
///
/// - `--sample=<period>/<window>` — run under SMARTS-style statistical
///   sampling: functionally fast-forward (caches, TLBs, directories,
///   and memory stay warm; no detailed timing) between detailed
///   measurement windows of `window` instructions taken every `period`
///   instructions per CPU. The result carries a
///   [`piranha_system::SampleEstimate`] (CPI mean ± 95% CI) instead of
///   exact figure numbers; golden fingerprints only apply with the
///   flag absent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleCli {
    /// The parsed `(period, window)` pair, if the flag was given and
    /// well-formed.
    pub spec: Option<(u64, u64)>,
}

impl SampleCli {
    /// Parse `--sample=` out of the process arguments.
    pub fn from_env_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse the flag from an explicit argument list; unrelated
    /// arguments are ignored, as is a malformed spec (zero values,
    /// window ≥ period, missing `/`).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut cli = SampleCli::default();
        for a in args {
            if let Some(v) = a.strip_prefix("--sample=") {
                cli.spec = v.trim().split_once('/').and_then(|(p, w)| {
                    let period = p.trim().parse::<u64>().ok()?;
                    let window = w.trim().parse::<u64>().ok()?;
                    (window >= 1 && period > window).then_some((period, window))
                });
            }
        }
        cli
    }

    /// Whether sampled execution was requested.
    pub fn active(&self) -> bool {
        self.spec.is_some()
    }

    /// Resolve the flag into a [`piranha_system::SampleConfig`], if
    /// given.
    pub fn sample_config(&self) -> Option<piranha_system::SampleConfig> {
        self.spec
            .map(|(period, window)| piranha_system::SampleConfig::new(period, window))
    }
}

/// The open-loop traffic flags of a figure binary (the `piranha-traffic`
/// subsystem):
///
/// - `--traffic=<spec>` — attach an open-loop arrival process to an
///   exemplar run. The spec is one of:
///   - `<rate>` — steady Poisson arrivals at `rate` transactions per
///     million CPU cycles per core (`--traffic=200`);
///   - `<rate>@<amplitude>/<period>` — the same rate modulated by a
///     sinusoidal diurnal curve, swinging ±`amplitude` (fraction) over
///     `period` cycles (`--traffic=200@0.5/2000000`);
///   - `ln<sigma>:<rate>[@<amplitude>/<period>]` — log-normal
///     (burstier) inter-arrivals with shape `sigma` at the same mean
///     rate (`--traffic=ln0.7:200`);
/// - `--traffic-depth=<n>` — bounded run-queue depth per core
///   (default 16);
/// - `--traffic-defer` — park overflowing arrivals on an unbounded
///   queue (counted `deferred`) instead of shedding them (`dropped`).
#[derive(Debug, Clone, Default)]
pub struct TrafficCli {
    /// The raw `--traffic=` value, if given.
    pub traffic: Option<String>,
    /// The `--traffic-depth=` value, if given and well-formed.
    pub depth: Option<usize>,
    /// Whether `--traffic-defer` was given.
    pub defer: bool,
}

impl TrafficCli {
    /// Parse the traffic flags out of the process arguments.
    pub fn from_env_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse the flags from an explicit argument list; unrelated
    /// arguments are ignored.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut cli = TrafficCli::default();
        for a in args {
            if let Some(v) = a.strip_prefix("--traffic=") {
                cli.traffic = Some(v.to_string());
            } else if let Some(v) = a.strip_prefix("--traffic-depth=") {
                cli.depth = v.trim().parse().ok().filter(|&n| n >= 1);
            } else if a == "--traffic-defer" {
                cli.defer = true;
            }
        }
        cli
    }

    /// Whether open-loop traffic was requested.
    pub fn active(&self) -> bool {
        self.traffic.is_some()
    }

    /// Resolve the flags into a [`TrafficConfig`]. No `--traffic=` flag
    /// → the disabled default (closed-loop execution, golden
    /// fingerprints intact).
    ///
    /// # Errors
    ///
    /// Returns a description of a malformed spec.
    pub fn traffic_config(&self) -> Result<TrafficConfig, String> {
        let Some(spec) = &self.traffic else {
            return Ok(TrafficConfig::default());
        };
        let spec = spec.trim();
        let (process, rest) = if let Some(r) = spec.strip_prefix("ln") {
            let (sigma, rest) = r
                .split_once(':')
                .ok_or_else(|| format!("--traffic=ln… needs ln<sigma>:<rate>, got {spec:?}"))?;
            let sigma: f64 = sigma
                .trim()
                .parse()
                .map_err(|_| format!("bad log-normal sigma in --traffic={spec:?}"))?;
            (ArrivalKind::LogNormal { sigma }, rest)
        } else {
            (ArrivalKind::Poisson, spec)
        };
        let (rate_str, curve) = match rest.split_once('@') {
            None => (rest, None),
            Some((r, c)) => {
                let (amp, period) = c.split_once('/').ok_or_else(|| {
                    format!("--traffic curve needs <rate>@<amplitude>/<period>, got {spec:?}")
                })?;
                let amplitude: f64 = amp
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad curve amplitude in --traffic={spec:?}"))?;
                let period_cycles: u64 = period
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad curve period in --traffic={spec:?}"))?;
                if period_cycles == 0 {
                    return Err(format!("curve period must be ≥ 1 in --traffic={spec:?}"));
                }
                (
                    r,
                    Some(DiurnalCurve {
                        amplitude,
                        period_cycles,
                    }),
                )
            }
        };
        let rate_tpmc: f64 = rate_str
            .trim()
            .parse()
            .map_err(|_| format!("bad rate in --traffic={spec:?}"))?;
        if rate_tpmc.is_nan() || rate_tpmc <= 0.0 {
            return Err(format!("--traffic rate must be > 0, got {spec:?}"));
        }
        let mut cfg = TrafficConfig {
            rate_tpmc,
            process,
            curve,
            ..TrafficConfig::default()
        };
        if let Some(d) = self.depth {
            cfg.queue_depth = d;
        }
        if self.defer {
            cfg.overflow = OverflowPolicy::Defer;
        }
        Ok(cfg)
    }
}

/// Run the traffic-loaded exemplar (the two-chip [`exemplar_config`]
/// under a bounded OLTP workload, run to completion) and render its
/// tail-latency summary for the binary to print.
///
/// # Errors
///
/// Returns the parse error of a malformed `--traffic=` spec.
pub fn run_traffic_exemplar(cli: &TrafficCli, txns_per_cpu: u64) -> Result<String, String> {
    let traffic = cli.traffic_config()?;
    let cfg = exemplar_config();
    let name = cfg.name.clone();
    let w = Workload::Oltp(piranha_workloads::OltpConfig {
        txn_limit: txns_per_cpu,
        ..piranha_workloads::OltpConfig::paper_default()
    });
    let r = piranha_harness::run_config_traffic(cfg, &w, RunScale::completion(), traffic.clone());
    let t = r.traffic.as_ref().expect("traffic was enabled");
    Ok(format!(
        "Open-loop exemplar: {name} @ {} tpmc ({:?})\n\
         txn latency p50 {} ns, p95 {} ns, p99 {} ns\n\
         offered {}, accepted {}, completed {}, dropped {} ({:.2}% drop), deferred {}\n",
        traffic.rate_tpmc,
        traffic.process,
        t.p50_ns(),
        t.p95_ns(),
        t.p99_ns(),
        t.ledger.generated,
        t.ledger.accepted,
        t.ledger.completed,
        t.ledger.dropped,
        t.ledger.drop_rate() * 100.0,
        t.ledger.deferred,
    ))
}

/// The fabric-override flags of a figure binary (the pluggable
/// interconnect of `piranha-net`):
///
/// - `--topology=<ring|mesh|torus|fattree>` — replace the automatic
///   paper layout with an explicit fabric shape;
/// - `--queue=<droptail|lossy|pfc>` — bound every output port at the
///   congested capacity
///   ([`piranha_net::CONGESTED_CAPACITY_NS`]) and select its overflow
///   behaviour (the default fabric is lossless unbounded drop-tail).
///
/// Golden fingerprints only apply with both flags absent. In
/// `fig_scale` the flags *narrow the sweep* to the named shape and
/// discipline instead of overriding a single configuration.
#[derive(Debug, Clone, Default)]
pub struct FabricCli {
    /// The raw `--topology=` value, if given.
    pub topology: Option<String>,
    /// The raw `--queue=` value, if given.
    pub queue: Option<String>,
}

impl FabricCli {
    /// Parse `--topology=`/`--queue=` out of the process arguments.
    pub fn from_env_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse the flags from an explicit argument list; unrelated
    /// arguments are ignored.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut cli = FabricCli::default();
        for a in args {
            if let Some(v) = a.strip_prefix("--topology=") {
                cli.topology = Some(v.to_string());
            } else if let Some(v) = a.strip_prefix("--queue=") {
                cli.queue = Some(v.to_string());
            }
        }
        cli
    }

    /// Whether any fabric override was requested.
    pub fn active(&self) -> bool {
        self.topology.is_some() || self.queue.is_some()
    }

    /// Resolve the raw flag values.
    ///
    /// # Errors
    ///
    /// Reports an unrecognized topology or queue spelling instead of
    /// silently falling back to the defaults.
    pub fn resolve(&self) -> Result<(Option<TopologyKind>, Option<QueueDiscipline>), String> {
        let topo = match &self.topology {
            None => None,
            Some(s) => Some(TopologyKind::parse(s).ok_or_else(|| {
                format!("unknown topology {s:?} (expected ring|mesh|torus|fattree)")
            })?),
        };
        let queue = match &self.queue {
            None => None,
            Some(s) => Some(QueueDiscipline::parse(s).ok_or_else(|| {
                format!("unknown queue discipline {s:?} (expected droptail|lossy|pfc)")
            })?),
        };
        Ok((topo, queue))
    }

    /// Apply the overrides to a system configuration (a no-op for
    /// absent flags).
    ///
    /// # Errors
    ///
    /// Propagates [`FabricCli::resolve`] errors.
    pub fn apply(&self, cfg: &mut SystemConfig) -> Result<(), String> {
        let (topo, queue) = self.resolve()?;
        if let Some(t) = topo {
            cfg.topology = t;
        }
        if let Some(q) = queue {
            cfg.net.queue = q;
        }
        Ok(())
    }
}

/// Run the two-chip exemplar under the fabric overrides of `cli` on a
/// bounded OLTP workload and summarize its fabric counters — the
/// `--topology=`/`--queue=` rider of `fig7`/`fig8`.
///
/// # Errors
///
/// Propagates [`FabricCli::resolve`] errors.
pub fn run_fabric_exemplar(cli: &FabricCli, txns_per_cpu: u64) -> Result<String, String> {
    let mut cfg = exemplar_config();
    cli.apply(&mut cfg)?;
    let name = cfg.name.clone();
    let (topo, queue) = (cfg.topology, cfg.net.queue);
    let w = Workload::Oltp(piranha_workloads::OltpConfig {
        txn_limit: txns_per_cpu,
        ..piranha_workloads::OltpConfig::paper_default()
    });
    let workers = piranha_harness::node_workers();
    let (r, m) = run_config_parallel_machine(cfg, &w, RunScale::completion(), workers);
    let fs = m.fabric_stats();
    let elapsed = m.now().since(piranha_types::SimTime::ZERO);
    Ok(format!(
        "Fabric exemplar: {name} on {} ({} queue)\n\
         committed {} txns; fabric delivered {} pkts (mean {:.2} hops), \
         {} deflections, {} drops, {} pauses, {} retransmits\n\
         {} links at {:.2}% mean occupancy\n",
        topo.label(),
        queue.label(),
        r.committed_txns.unwrap_or(0),
        fs.delivered,
        fs.mean_hops,
        fs.deflections,
        fs.drops,
        fs.pauses,
        fs.retransmits,
        fs.links,
        fs.occupancy(elapsed) * 100.0,
    ))
}

/// The configuration the probed exemplar run simulates: a two-chip
/// machine of 4-CPU Piranha chips, so protocol-engine and interconnect
/// activity shows up in the trace alongside cpu/cache/mem spans.
pub fn exemplar_config() -> SystemConfig {
    SystemConfig::piranha_pn(4).scaled_to_chips(2)
}

/// Run the probed exemplar and write whatever `cli` asked for. Returns
/// a human-readable summary (export destinations, span counts, and the
/// per-core stall-attribution table) for the binary to print.
///
/// # Errors
///
/// Propagates I/O errors from writing the export files.
pub fn export_probed_run(cli: &ProbeCli, w: &Workload, scale: RunScale) -> std::io::Result<String> {
    let level = if cli.trace.is_some() {
        TraceLevel::Spans
    } else {
        TraceLevel::Off
    };
    let cfg = exemplar_config();
    let name = cfg.name.clone();
    let (r, probe) = run_config_probed(cfg, w, scale, ProbeConfig::with_level(level));

    let mut out = format!("Probed exemplar run: {name}\n");
    if let Some(path) = &cli.trace {
        let snap = probe.trace_snapshot().expect("probe is attached");
        std::fs::write(path, chrome::chrome_trace_json(&snap))?;
        out.push_str(&format!(
            "  trace: {} spans across {:?} -> {}\n",
            snap.len(),
            snap.categories(),
            path.display()
        ));
    }
    if let Some(path) = &cli.metrics {
        let body = if json::is_json(path) {
            r.metrics.to_json()
        } else {
            r.metrics.to_csv()
        };
        std::fs::write(path, body)?;
        out.push_str(&format!(
            "  metrics: {} entries -> {}\n",
            r.metrics.len(),
            path.display()
        ));
    }
    out.push_str("\nPer-core stall attribution (fractions of wall cycles)\n");
    out.push_str(&r.stall_table().render());
    Ok(out)
}

/// The one JSON surface the figure binaries share: the workspace's JSON
/// value type (re-exported from `piranha-serve`, where the persistent
/// result store's envelope and the experiment service's wire protocol
/// use it too) plus the report emitters the CI smoke steps parse.
///
/// Consolidating the emitters here keeps their field names in one
/// place; the values come straight from the report structs, so a field
/// rename is a compile error instead of a silently drifting contract.
pub mod json {
    use std::path::Path;

    pub use piranha_serve::json::{escape, Json};
    use piranha_system::RunResult;

    use crate::experiments::{LatencyReport, SampleReport, ScaleReport};

    /// Whether an export path selects JSON by extension (`.json`, any
    /// case) — the `--metrics=` format switch.
    pub fn is_json(path: &Path) -> bool {
        path.extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("json"))
    }

    fn field(name: &str, v: Json) -> (String, Json) {
        (name.to_string(), v)
    }

    /// The JSON report the CI `scale-smoke` step uploads (`fig_scale
    /// --metrics=`).
    pub fn scale_report(rep: &ScaleReport) -> String {
        let rows: Vec<Json> = rep
            .rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    field("nodes", Json::U64(r.nodes as u64)),
                    field("topology", Json::str(r.topology)),
                    field("queue", Json::str(r.queue)),
                    field("committed", Json::U64(r.committed)),
                    field("tpmc", Json::F64(r.tpmc)),
                    field("sim_us", Json::F64(r.sim_us)),
                    field("delivered", Json::U64(r.fabric.delivered)),
                    field("walks", Json::U64(r.fabric.walks)),
                    field("retransmits", Json::U64(r.fabric.retransmits)),
                    field("deflections", Json::U64(r.fabric.deflections)),
                    field("drops", Json::U64(r.fabric.drops)),
                    field("pauses", Json::U64(r.fabric.pauses)),
                    field("pause_ns", Json::U64(r.fabric.pause_time.as_ns())),
                    field("mean_hops", Json::F64(r.fabric.mean_hops)),
                    field("links", Json::U64(r.fabric.links as u64)),
                    field("occupancy", Json::F64(r.occupancy)),
                    field("fingerprint", Json::U64(r.fingerprint)),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            field("txns_per_cpu", Json::U64(rep.txns_per_cpu)),
            field("rows", Json::Arr(rows)),
        ]);
        format!("{doc}\n")
    }

    /// The JSON report the CI `latency-smoke` step uploads
    /// (`fig_latency --metrics=`).
    pub fn latency_report(rep: &LatencyReport) -> String {
        let rows: Vec<Json> = rep
            .rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    field("fraction", Json::F64(r.fraction)),
                    field("rate_tpmc", Json::F64(r.rate_tpmc)),
                    field("p50_ns", Json::U64(r.p50_ns)),
                    field("p95_ns", Json::U64(r.p95_ns)),
                    field("p99_ns", Json::U64(r.p99_ns)),
                    field("mean_ns", Json::F64(r.mean_ns)),
                    field("drop_rate", Json::F64(r.drop_rate)),
                    field("generated", Json::U64(r.ledger.generated)),
                    field("accepted", Json::U64(r.ledger.accepted)),
                    field("dropped", Json::U64(r.ledger.dropped)),
                    field("deferred", Json::U64(r.ledger.deferred)),
                    field("completed", Json::U64(r.ledger.completed)),
                    field("fingerprint", Json::U64(r.fingerprint)),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            field("config", Json::str(&rep.config)),
            field("txns_per_cpu", Json::U64(rep.txns_per_cpu)),
            field("service_tpmc", Json::F64(rep.service_tpmc)),
            field("knee", rep.knee.map_or(Json::Null, |k| Json::U64(k as u64))),
            field("rows", Json::Arr(rows)),
        ]);
        format!("{doc}\n")
    }

    /// The JSON report the CI `sample-smoke` step validates
    /// (`fig_sample --metrics=`).
    pub fn sample_report(rep: &SampleReport) -> String {
        let rows: Vec<Json> = rep
            .rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    field("period", Json::U64(r.period)),
                    field("window", Json::U64(r.window)),
                    field("windows", Json::U64(r.estimate.windows)),
                    field("cpi_mean", Json::F64(r.estimate.cpi_mean)),
                    field("cpi_ci95", Json::F64(r.estimate.cpi_ci95)),
                    field("stall_mean", Json::F64(r.estimate.stall_mean)),
                    field("detailed_fraction", Json::F64(r.estimate.detailed_fraction)),
                    field("detailed_instrs", Json::U64(r.estimate.detailed_instrs)),
                    field("warmed_instrs", Json::U64(r.estimate.warmed_instrs)),
                    field("cpi_error", Json::F64(r.cpi_error)),
                    field("within_ci", Json::Bool(r.within_ci)),
                    field("speedup", Json::F64(r.speedup)),
                    field("host_secs", Json::F64(r.host_secs)),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            field("config", Json::str(&rep.config)),
            field("txns_per_cpu", Json::U64(rep.txns_per_cpu)),
            field("ref_cpi", Json::F64(rep.ref_cpi)),
            field("ref_committed", Json::U64(rep.ref_committed)),
            field("host_secs_detailed", Json::F64(rep.host_secs_detailed)),
            field("rows", Json::Arr(rows)),
        ]);
        format!("{doc}\n")
    }

    /// The JSON report the CI `fault-smoke` step validates
    /// (`fig_faults --metrics=`): the headline faulted run, its repeat
    /// (determinism proof), and the availability ledger with the
    /// slowdown versus the fault-free baseline stamped in.
    pub fn fault_headline(
        config: &str,
        txns_per_cpu: u64,
        r1: &RunResult,
        r2: &RunResult,
        slowdown: f64,
    ) -> String {
        let mut av = r1.availability.clone();
        av.slowdown = Some(slowdown);
        let availability =
            Json::parse(&av.to_json()).expect("AvailabilityReport::to_json emits valid JSON");
        let doc = Json::obj(vec![
            field("config", Json::str(config)),
            field("txns_per_cpu", Json::U64(txns_per_cpu)),
            field("committed", Json::U64(r1.committed_txns.unwrap_or(0))),
            field("fingerprint", Json::U64(r1.fingerprint())),
            field("fingerprint_repeat", Json::U64(r2.fingerprint())),
            field(
                "deterministic",
                Json::Bool(r1.fingerprint() == r2.fingerprint()),
            ),
            field("availability", availability),
        ]);
        format!("{doc}\n")
    }
}

#[cfg(test)]
mod tests {
    use std::path::Path;

    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_ignores_the_rest() {
        let cli = ProbeCli::parse(args(&["--quick", "--trace=t.json", "--metrics=m.csv"]));
        assert_eq!(cli.trace.as_deref(), Some(Path::new("t.json")));
        assert_eq!(cli.metrics.as_deref(), Some(Path::new("m.csv")));
        assert!(cli.active());
        assert!(!ProbeCli::parse(args(&["--quick"])).active());
    }

    #[test]
    fn metrics_format_follows_extension() {
        assert!(json::is_json(Path::new("out.json")));
        assert!(json::is_json(Path::new("out.JSON")));
        assert!(!json::is_json(Path::new("out.csv")));
        assert!(!json::is_json(Path::new("out")));
    }

    #[test]
    fn store_flag_parses_and_ignores_the_rest() {
        assert!(!StoreCli::parse(args(&["--quick"])).active());
        let cli = StoreCli::parse(args(&["--quick", "--store=/tmp/results"]));
        assert_eq!(cli.dir.as_deref(), Some(Path::new("/tmp/results")));
        assert!(cli.active());
    }

    #[test]
    fn report_emitters_produce_valid_json() {
        use crate::experiments::{LatencyReport, LatencyRow};
        use json::Json;
        let rep = LatencyReport {
            config: "P4x2".into(),
            txns_per_cpu: 20,
            service_tpmc: 123.5,
            rows: vec![LatencyRow {
                fraction: 0.25,
                rate_tpmc: 30.875,
                p50_ns: 100,
                p95_ns: 200,
                p99_ns: 300,
                mean_ns: 120.0,
                drop_rate: 0.0,
                ledger: piranha_system::TrafficLedger::default(),
                fingerprint: u64::MAX,
            }],
            knee: None,
        };
        let doc = Json::parse(&json::latency_report(&rep)).unwrap();
        assert_eq!(doc.get("config").and_then(Json::as_str), Some("P4x2"));
        assert!(doc.get("knee").is_some_and(Json::is_null));
        let row = &doc.get("rows").and_then(Json::as_arr).unwrap()[0];
        // u64 fields survive without an f64 round trip.
        assert_eq!(
            row.get("fingerprint").and_then(Json::as_u64),
            Some(u64::MAX)
        );
        assert_eq!(row.get("p99_ns").and_then(Json::as_u64), Some(300));
    }

    #[test]
    fn exemplar_is_multichip() {
        let cfg = exemplar_config();
        assert!(cfg.nodes >= 2, "protocol/net spans need >1 chip");
    }

    #[test]
    fn parallel_flag_parses_and_rejects_nonsense() {
        assert_eq!(ParallelCli::parse(args(&["--quick"])).workers, None);
        assert_eq!(
            ParallelCli::parse(args(&["--parallel=4", "--quick"])).workers,
            Some(4)
        );
        assert_eq!(ParallelCli::parse(args(&["--parallel=0"])).workers, None);
        assert_eq!(
            ParallelCli::parse(args(&["--parallel=bogus"])).workers,
            None
        );
    }

    #[test]
    fn sample_flag_parses_and_rejects_nonsense() {
        assert_eq!(SampleCli::parse(args(&["--quick"])).spec, None);
        let ok = SampleCli::parse(args(&["--sample=10000/1000", "--quick"]));
        assert_eq!(ok.spec, Some((10_000, 1_000)));
        assert!(ok.active());
        let cfg = ok.sample_config().unwrap();
        assert_eq!((cfg.period, cfg.window), (10_000, 1_000));
        // Malformed specs are ignored, not half-parsed.
        assert_eq!(SampleCli::parse(args(&["--sample=1000"])).spec, None);
        assert_eq!(SampleCli::parse(args(&["--sample=0/0"])).spec, None);
        assert_eq!(
            SampleCli::parse(args(&["--sample=500/1000"])).spec,
            None,
            "window must be smaller than the period"
        );
        assert_eq!(SampleCli::parse(args(&["--sample=a/b"])).spec, None);
    }

    #[test]
    fn traffic_flags_resolve_to_configs() {
        // No flags: traffic stays disabled and fingerprints intact.
        let off = TrafficCli::parse(args(&["--quick"]));
        assert!(!off.active());
        assert!(!off.traffic_config().unwrap().enabled());
        // A bare rate is steady Poisson.
        let p = TrafficCli::parse(args(&["--traffic=200"]));
        let cfg = p.traffic_config().unwrap();
        assert!(cfg.enabled());
        assert!((cfg.rate_tpmc - 200.0).abs() < 1e-12);
        assert_eq!(cfg.process, ArrivalKind::Poisson);
        assert!(cfg.curve.is_none());
        // rate@amplitude/period adds a diurnal curve.
        let c = TrafficCli::parse(args(&["--traffic=150@0.5/2000000"]));
        let cfg = c.traffic_config().unwrap();
        assert_eq!(
            cfg.curve,
            Some(DiurnalCurve {
                amplitude: 0.5,
                period_cycles: 2_000_000
            })
        );
        // ln<sigma>:<rate> selects log-normal inter-arrivals.
        let ln = TrafficCli::parse(args(&["--traffic=ln0.7:300"]));
        let cfg = ln.traffic_config().unwrap();
        assert_eq!(cfg.process, ArrivalKind::LogNormal { sigma: 0.7 });
        assert!((cfg.rate_tpmc - 300.0).abs() < 1e-12);
        // Depth and overflow-policy riders apply.
        let full = TrafficCli::parse(args(&[
            "--traffic=100",
            "--traffic-depth=4",
            "--traffic-defer",
        ]));
        let cfg = full.traffic_config().unwrap();
        assert_eq!(cfg.queue_depth, 4);
        assert_eq!(cfg.overflow, OverflowPolicy::Defer);
        // Malformed specs are reported, not swallowed.
        for bad in [
            "--traffic=bogus",
            "--traffic=0",
            "--traffic=-5",
            "--traffic=ln:100",
            "--traffic=ln0.7",
            "--traffic=100@0.5",
            "--traffic=100@x/10",
            "--traffic=100@0.5/0",
        ] {
            assert!(
                TrafficCli::parse(args(&[bad])).traffic_config().is_err(),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn fabric_flags_resolve_to_overrides() {
        // No flags: the config keeps its (golden) defaults.
        let off = FabricCli::parse(args(&["--quick"]));
        assert!(!off.active());
        let mut cfg = exemplar_config();
        off.apply(&mut cfg).unwrap();
        assert_eq!(cfg.topology, TopologyKind::Auto);
        assert_eq!(cfg.net.queue, QueueDiscipline::unbounded());
        // Both riders apply; the queue comes back bounded.
        let cli = FabricCli::parse(args(&["--topology=torus", "--queue=pfc", "--quick"]));
        assert!(cli.active());
        cli.apply(&mut cfg).unwrap();
        assert_eq!(cfg.topology, TopologyKind::Torus);
        assert_eq!(cfg.net.queue.label(), "pfc");
        assert!(cfg.net.queue.capacity() < QueueDiscipline::unbounded().capacity());
        // Malformed values are reported, not swallowed.
        assert!(FabricCli::parse(args(&["--topology=hypercube"]))
            .resolve()
            .is_err());
        assert!(FabricCli::parse(args(&["--queue=wormhole"]))
            .resolve()
            .is_err());
    }

    #[test]
    fn fault_flags_resolve_to_configs() {
        // No flags: injection stays disabled.
        let off = FaultCli::parse(args(&["--quick"]));
        assert!(!off.active());
        assert!(!off.fault_config().unwrap().enabled());
        // Numeric --faults= seeds a random schedule at the given rate.
        let seeded = FaultCli::parse(args(&["--faults=42", "--fault-rate=1e-3"]));
        let cfg = seeded.fault_config().unwrap();
        assert_eq!(cfg.seed, 42);
        assert!((cfg.rate - 1e-3).abs() < 1e-12);
        assert!(cfg.enabled());
        // --fault-rate= alone uses the default seed.
        let rate_only = FaultCli::parse(args(&["--fault-rate=5e-4"]));
        assert_eq!(rate_only.fault_config().unwrap().seed, 42);
        // Non-numeric --faults= parses as a script.
        let scripted = FaultCli::parse(args(&["--faults=corrupt@50, flip2@300"]));
        let cfg = scripted.fault_config().unwrap();
        assert_eq!(cfg.script.len(), 2);
        assert!(cfg.enabled());
        // Malformed scripts are reported, not swallowed.
        assert!(FaultCli::parse(args(&["--faults=bogus@@"]))
            .fault_config()
            .is_err());
    }
}
