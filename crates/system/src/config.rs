//! System configuration, including the paper's Table 1 presets.

use piranha_cache::{L1Config, L2BankConfig};
use piranha_cpu::{InOrderConfig, OooConfig};
use piranha_faults::FaultConfig;
use piranha_ics::IcsConfig;
use piranha_mem::MemBankConfig;
use piranha_net::{NetworkConfig, TopologyKind};
use piranha_traffic::TrafficConfig;
use piranha_types::time::Clock;
use piranha_types::Duration;

/// Which core timing model the chip's CPUs use.
#[derive(Debug, Clone, Copy)]
pub enum CoreKind {
    /// Piranha's single-issue in-order core (also the INO baseline).
    InOrder(InOrderConfig),
    /// The aggressive out-of-order baseline.
    Ooo(OooConfig),
}

/// Fixed path latencies calibrated against Table 1.
#[derive(Debug, Clone, Copy)]
pub struct PathLatencies {
    /// L1 miss → request at the L2 bank.
    pub req: Duration,
    /// L2 bank lookup occupancy (also the per-event bank service time).
    pub bank: Duration,
    /// Bank → L1 fill (critical word) for on-chip service.
    pub reply: Duration,
    /// Extra probe time when another L1 supplies the data ("L2 Fwd").
    pub fwd_probe: Duration,
    /// Memory-controller overhead on top of the RDRAM access.
    pub mc_overhead: Duration,
    /// One protocol-engine microinstruction (the engines run at the CPU
    /// clock, §2.5.1).
    pub pe_instr: Duration,
}

impl PathLatencies {
    /// Prototype Piranha latencies: 16 ns L2 hit, 24 ns L2 forward,
    /// ~80 ns local memory (Table 1).
    pub fn piranha_asic() -> Self {
        PathLatencies {
            req: Duration::from_ns(6),
            bank: Duration::from_ns(2),
            reply: Duration::from_ns(8),
            fwd_probe: Duration::from_ns(8),
            mc_overhead: Duration::from_ns(6),
            pe_instr: Duration::from_ps(2000),
        }
    }

    /// Full-custom Piranha: 12 ns L2 hit, 16 ns forward (Table 1).
    pub fn piranha_custom() -> Self {
        PathLatencies {
            req: Duration::from_ns(4),
            bank: Duration::from_ns(2),
            reply: Duration::from_ns(6),
            fwd_probe: Duration::from_ns(4),
            mc_overhead: Duration::from_ns(6),
            pe_instr: Duration::from_ps(800),
        }
    }

    /// OOO/INO baseline: 12 ns L2 hit (Table 1); no on-chip forwarding
    /// (single CPU).
    pub fn ooo_chip() -> Self {
        PathLatencies {
            req: Duration::from_ns(4),
            bank: Duration::from_ns(2),
            reply: Duration::from_ns(6),
            fwd_probe: Duration::from_ns(4),
            mc_overhead: Duration::from_ns(6),
            pe_instr: Duration::from_ps(1000),
        }
    }

    /// The pessimistic sensitivity variant (§4): 22 ns hit / 32 ns fwd.
    pub fn piranha_pessimistic() -> Self {
        PathLatencies {
            req: Duration::from_ns(8),
            bank: Duration::from_ns(4),
            reply: Duration::from_ns(10),
            fwd_probe: Duration::from_ns(10),
            mc_overhead: Duration::from_ns(6),
            pe_instr: Duration::from_ps(2500),
        }
    }
}

/// Full description of a simulated system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// A short label for reports ("P8", "OOO", ...).
    pub name: String,
    /// Number of nodes (chips).
    pub nodes: usize,
    /// CPUs per chip.
    pub cpus_per_node: usize,
    /// Core model and parameters.
    pub core: CoreKind,
    /// CPU (and protocol-engine) clock.
    pub cpu_clock: Clock,
    /// L1 geometry.
    pub l1: L1Config,
    /// Number of L2 banks (= memory controllers) per chip.
    pub l2_banks: usize,
    /// Geometry of each bank.
    pub l2_bank: L2BankConfig,
    /// Intra-chip switch parameters.
    pub ics: IcsConfig,
    /// Memory bank (RDRAM channel) parameters.
    pub mem: MemBankConfig,
    /// Inter-node network parameters.
    pub net: NetworkConfig,
    /// Which fabric topology the wiring builds over the nodes
    /// ([`TopologyKind::Auto`] reproduces the paper's glueless
    /// clique/mesh layout; the others are the scaling-study fabrics).
    pub topology: TopologyKind,
    /// Calibrated path latencies.
    pub lat: PathLatencies,
    /// Instructions per CPU scheduling quantum (simulation batching
    /// only; does not affect results beyond event granularity).
    pub cpu_quantum: u64,
    /// Simulation seed.
    pub seed: u64,
    /// Cruise-missile-invalidate route budget (paper: 4). Setting this
    /// to a huge value degenerates to point-to-point invalidations, the
    /// baseline of the §2.5.3 ablation.
    pub cmi_routes: usize,
    /// Number of I/O nodes appended after the processing nodes (paper
    /// §2, Figure 2: one CPU, one L2/MC, a two-link router; a full
    /// member of the coherence protocol).
    pub io_nodes: usize,
    /// Fault injection (paper §2.7 recovery exercise); the default is
    /// fully disabled and bit-identical to a fault-free machine.
    pub faults: FaultConfig,
    /// Open-loop traffic generation (arrival processes, bounded run
    /// queues, latency stamps); the default is fully disabled and
    /// bit-identical to a closed-loop machine.
    pub traffic: TrafficConfig,
}

impl SystemConfig {
    /// The Piranha prototype: eight 500 MHz single-issue in-order CPUs,
    /// 64 KB 2-way L1s, 1 MB 8-way shared L2 in eight banks (Table 1).
    pub fn piranha_p8() -> Self {
        SystemConfig {
            name: "P8".into(),
            nodes: 1,
            cpus_per_node: 8,
            core: CoreKind::InOrder(InOrderConfig::paper_default()),
            cpu_clock: Clock::from_mhz(500),
            l1: L1Config::paper_default(),
            l2_banks: 8,
            l2_bank: L2BankConfig::paper_default(),
            ics: IcsConfig::paper_default(),
            mem: MemBankConfig {
                rdram: piranha_mem::RdramConfig::with_banks(8),
            },
            net: NetworkConfig::paper_default(),
            topology: TopologyKind::Auto,
            lat: PathLatencies::piranha_asic(),
            cpu_quantum: 2000,
            seed: 0xB10_CA5,
            cmi_routes: 4,
            io_nodes: 0,
            faults: FaultConfig::default(),
            traffic: TrafficConfig::default(),
        }
    }

    /// A hypothetical single-CPU Piranha chip (the paper's P1).
    pub fn piranha_p1() -> Self {
        SystemConfig {
            name: "P1".into(),
            cpus_per_node: 1,
            ..Self::piranha_p8()
        }
    }

    /// A Piranha chip with `n` CPUs (P2/P4 in Figures 6 and 7).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds 8.
    pub fn piranha_pn(n: usize) -> Self {
        assert!((1..=8).contains(&n), "Piranha chips have 1..=8 CPUs");
        SystemConfig {
            name: format!("P{n}"),
            cpus_per_node: n,
            ..Self::piranha_p8()
        }
    }

    /// The full-custom Piranha (P8F): 1.25 GHz, faster L2 (Table 1).
    pub fn piranha_p8f() -> Self {
        SystemConfig {
            name: "P8F".into(),
            cpu_clock: Clock::from_mhz(1250),
            ics: IcsConfig::with_clock(Clock::from_mhz(1250)),
            lat: PathLatencies::piranha_custom(),
            ..Self::piranha_p8()
        }
    }

    /// The aggressive next-generation out-of-order baseline (OOO):
    /// 1 GHz, 4-issue, 64-entry window, 1.5 MB 6-way L2 (Table 1).
    pub fn ooo() -> Self {
        SystemConfig {
            name: "OOO".into(),
            nodes: 1,
            cpus_per_node: 1,
            core: CoreKind::Ooo(OooConfig::paper_default()),
            cpu_clock: Clock::from_mhz(1000),
            l1: L1Config::paper_default(),
            l2_banks: 2,
            l2_bank: L2BankConfig {
                size_bytes: 768 * 1024,
                ways: 6,
            },
            ics: IcsConfig::with_clock(Clock::from_mhz(1000)),
            mem: MemBankConfig {
                rdram: piranha_mem::RdramConfig::with_banks(2),
            },
            net: NetworkConfig::paper_default(),
            topology: TopologyKind::Auto,
            lat: PathLatencies::ooo_chip(),
            cpu_quantum: 2000,
            seed: 0xB10_CA5,
            cmi_routes: 4,
            io_nodes: 0,
            faults: FaultConfig::default(),
            traffic: TrafficConfig::default(),
        }
    }

    /// The single-issue in-order variant of OOO (INO): isolates clock
    /// and memory-system effects from issue width (Figure 5).
    pub fn ino() -> Self {
        SystemConfig {
            name: "INO".into(),
            core: CoreKind::InOrder(InOrderConfig::paper_default()),
            ..Self::ooo()
        }
    }

    /// The §4 pessimistic sensitivity variant of P8: 400 MHz CPUs,
    /// 32 KB direct-mapped L1s, 22/32 ns L2 latencies.
    pub fn piranha_p8_pessimistic() -> Self {
        SystemConfig {
            name: "P8-pess".into(),
            cpu_clock: Clock::from_mhz(400),
            l1: L1Config::pessimistic(),
            ics: IcsConfig::with_clock(Clock::from_mhz(400)),
            lat: PathLatencies::piranha_pessimistic(),
            ..Self::piranha_p8()
        }
    }

    /// A multi-chip (NUMA) system of `chips` copies of this chip
    /// configuration (Figure 7 uses up to four 4-CPU chips).
    pub fn scaled_to_chips(mut self, chips: usize) -> Self {
        self.nodes = chips;
        self.name = format!("{}x{}", self.name, chips);
        self
    }

    /// Attach `n` I/O nodes (each with one CPU and one L2/MC pair,
    /// running a DMA/device-driver stream).
    pub fn with_io_nodes(mut self, n: usize) -> Self {
        self.io_nodes = n;
        self
    }

    /// Total CPUs in the system, including one per I/O node.
    pub fn total_cpus(&self) -> usize {
        self.nodes * self.cpus_per_node + self.io_nodes
    }

    /// CPUs running the workload (the processing nodes' CPUs).
    pub fn workload_cpus(&self) -> usize {
        self.nodes * self.cpus_per_node
    }

    /// Table 1 rows for this configuration (used by the Table 1
    /// regenerator).
    pub fn table1_row(&self) -> Vec<(&'static str, String)> {
        let (issue, window) = match self.core {
            CoreKind::InOrder(_) => (1, None),
            CoreKind::Ooo(c) => (c.width, Some(c.window)),
        };
        vec![
            ("Processor Speed", format!("{} MHz", self.cpu_clock.mhz())),
            ("Issue Width", issue.to_string()),
            (
                "Instruction Window Size",
                window.map_or("-".to_string(), |w| w.to_string()),
            ),
            ("Cache Line Size", "64 bytes".to_string()),
            ("L1 Cache Size", format!("{} KB", self.l1.size_bytes / 1024)),
            ("L1 Cache Associativity", format!("{}-way", self.l1.ways)),
            (
                "L2 Cache Size",
                format!(
                    "{} MB",
                    self.l2_banks as f64 * self.l2_bank.size_bytes as f64 / (1 << 20) as f64
                ),
            ),
            (
                "L2 Cache Associativity",
                format!("{}-way", self.l2_bank.ways),
            ),
            (
                "L2 Hit / L2 Fwd Latency",
                format!(
                    "{} ns / {} ns",
                    (self.lat.req + self.lat.bank + self.lat.reply).as_ns(),
                    (self.lat.req + self.lat.bank + self.lat.reply + self.lat.fwd_probe).as_ns()
                ),
            ),
            ("Local Memory Latency", "~80 ns".to_string()),
            ("Remote Memory Latency", "~120 ns".to_string()),
            ("Remote Dirty Latency", "~180 ns".to_string()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let p8 = SystemConfig::piranha_p8();
        assert_eq!(p8.cpu_clock.mhz(), 500);
        assert_eq!(p8.total_cpus(), 8);
        assert_eq!(
            p8.l2_banks as u64 * p8.l2_bank.size_bytes,
            1 << 20,
            "1MB L2"
        );
        assert_eq!(p8.l2_bank.ways, 8);
        let hit = (p8.lat.req + p8.lat.bank + p8.lat.reply).as_ns();
        let fwd = hit + p8.lat.fwd_probe.as_ns();
        assert_eq!((hit, fwd), (16, 24));

        let ooo = SystemConfig::ooo();
        assert_eq!(ooo.cpu_clock.mhz(), 1000);
        assert!(matches!(ooo.core, CoreKind::Ooo(c) if c.width == 4 && c.window == 64));
        assert_eq!(
            ooo.l2_banks as u64 * ooo.l2_bank.size_bytes,
            1536 << 10,
            "1.5MB L2"
        );
        assert_eq!((ooo.lat.req + ooo.lat.bank + ooo.lat.reply).as_ns(), 12);

        let p8f = SystemConfig::piranha_p8f();
        assert_eq!(p8f.cpu_clock.mhz(), 1250);
        assert_eq!((p8f.lat.req + p8f.lat.bank + p8f.lat.reply).as_ns(), 12);

        let ino = SystemConfig::ino();
        assert!(matches!(ino.core, CoreKind::InOrder(_)));
        assert_eq!(ino.cpu_clock.mhz(), 1000);
    }

    #[test]
    fn pessimistic_variant_matches_section4() {
        let p = SystemConfig::piranha_p8_pessimistic();
        assert_eq!(p.cpu_clock.mhz(), 400);
        assert_eq!(p.l1.ways, 1);
        assert_eq!(p.l1.size_bytes, 32 * 1024);
        let hit = (p.lat.req + p.lat.bank + p.lat.reply).as_ns();
        assert_eq!(hit, 22);
        assert_eq!(hit + p.lat.fwd_probe.as_ns(), 32);
    }

    #[test]
    fn multi_chip_scaling() {
        let c = SystemConfig::piranha_pn(4).scaled_to_chips(4);
        assert_eq!(c.total_cpus(), 16);
        assert_eq!(c.name, "P4x4");
    }

    #[test]
    fn table1_row_is_complete() {
        let rows = SystemConfig::piranha_p8().table1_row();
        assert!(rows.len() >= 10);
        assert_eq!(rows[0].1, "500 MHz");
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn oversized_chip_rejected() {
        SystemConfig::piranha_pn(9);
    }
}
