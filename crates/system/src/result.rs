//! Measured results of a simulation window — the quantities the paper's
//! figures are built from.

use piranha_cpu::CoreStats;
use piranha_faults::AvailabilityReport;
use piranha_probe::{MetricsSnapshot, StallTable};
use piranha_sample::SampleEstimate;
use piranha_traffic::TrafficSummary;
use piranha_types::time::Clock;
use piranha_types::Duration;

/// The Figure-5-style execution-time breakdown for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuBreakdown {
    /// Fraction of cycles doing useful work (including branch
    /// penalties, as in the paper's "CPU busy").
    pub busy: f64,
    /// Fraction stalled on L2 hits + on-chip forwards ("L2 hit stall").
    pub l2_hit: f64,
    /// Fraction stalled past the L2 ("L2 miss stall").
    pub l2_miss: f64,
}

/// Statistics of one measured window.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Configuration label.
    pub name: String,
    /// Simulated duration of the window.
    pub window: Duration,
    /// The CPU clock (to convert cycles ↔ time).
    pub clock: Clock,
    /// Per-CPU statistics over the window.
    pub cpus: Vec<CoreStats>,
    /// Mean RDRAM open-page hit rate over the whole run (§2.4); zero
    /// until a `Machine` populates it at the end of `Machine::run`.
    pub mem_page_hit_rate: f64,
    /// Observability snapshot sampled at the end of the run; empty
    /// unless a probe was attached. Deliberately excluded from
    /// [`RunResult::fingerprint`]: it describes the measurement, not the
    /// simulated machine state.
    pub metrics: MetricsSnapshot,
    /// The fault-injection availability ledger (all-zero when faults are
    /// disabled). Part of the fingerprint: two runs only match when they
    /// saw the same faults handled the same way.
    pub availability: AvailabilityReport,
    /// Workload-level units of work committed (bounded workloads run to
    /// completion); `None` for fixed-instruction-window runs. Part of
    /// the fingerprint.
    pub committed_txns: Option<u64>,
    /// The statistical estimate of a sampled run
    /// (`Machine::run_sampled`); `None` for full-detail runs.
    /// Deliberately excluded from [`RunResult::fingerprint`]: an
    /// estimate carries measurement error by construction, and the
    /// golden fingerprints certify the exact detailed model only.
    pub sample: Option<SampleEstimate>,
    /// Open-loop traffic results (conservation ledger + birth→commit
    /// latency histogram); `None` when traffic is off. Deliberately
    /// excluded from [`RunResult::fingerprint`]: latency percentiles are
    /// derived observations like the sample estimate, and with traffic
    /// off the field is `None`, so the goldens certify the closed-loop
    /// model untouched.
    pub traffic: Option<TrafficSummary>,
}

impl RunResult {
    /// Assemble a result (with no memory-page statistics).
    pub fn new(name: String, window: Duration, clock: Clock, cpus: Vec<CoreStats>) -> Self {
        RunResult {
            name,
            window,
            clock,
            cpus,
            mem_page_hit_rate: 0.0,
            metrics: MetricsSnapshot::default(),
            availability: AvailabilityReport::default(),
            committed_txns: None,
            sample: None,
            traffic: None,
        }
    }

    /// A fingerprint of every *simulated* quantity (name, window, clock,
    /// per-CPU statistics, memory page-hit rate) — and nothing about the
    /// probe. Two runs of the same configuration must produce the same
    /// fingerprint whether or not observability was enabled; the
    /// determinism guard test asserts exactly that.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a canonical rendering of the simulated fields.
        // The availability digest and committed count are simulated
        // quantities too: a disabled fault plane digests identically to
        // the pre-fault-injection representation of the same run.
        let repr = format!(
            "{}|{:?}|{:?}|{:?}|{}|{}|{:?}",
            self.name,
            self.window,
            self.clock,
            self.cpus,
            self.mem_page_hit_rate.to_bits(),
            self.availability.digest(),
            self.committed_txns,
        );
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The per-core stall-attribution table (the Figure 5 breakdown at
    /// per-core granularity): each core's wall cycles split over busy
    /// and the five fill-service stall categories, plus an `all` row.
    /// Every row's fractions sum to 1.
    pub fn stall_table(&self) -> StallTable {
        let cats = [
            "busy",
            "l2_hit",
            "l2_fwd",
            "local_mem",
            "remote_mem",
            "remote_dirty",
        ];
        let mut t = StallTable::new(&cats);
        let wall = self.wall_cycles();
        let row = |s: &CoreStats, wall: u64| {
            let stalls = s.stall_cycles;
            let attributed: u64 = stalls.iter().sum();
            let busy = wall.saturating_sub(attributed);
            let mut cycles = vec![busy];
            cycles.extend_from_slice(&stalls);
            cycles
        };
        for (i, s) in self.cpus.iter().enumerate() {
            t.push_row(format!("cpu{i}"), row(s, wall), wall);
        }
        let merged = self.merged();
        let all_wall = wall * self.cpus.len() as u64;
        t.push_row("all", row(&merged, all_wall), all_wall);
        t
    }

    /// Total instructions retired in the window.
    pub fn total_instrs(&self) -> u64 {
        self.cpus.iter().map(|c| c.instrs).sum()
    }

    /// Aggregate throughput in instructions per nanosecond — the
    /// fixed-work execution-time metric: `time = work / throughput`.
    pub fn throughput_ipns(&self) -> f64 {
        let ns = self.window.as_ns().max(1);
        self.total_instrs() as f64 / ns as f64
    }

    /// Execution time normalized to `base` (matching the paper's
    /// "normalized execution time" axis: lower is faster).
    pub fn normalized_time_vs(&self, base: &RunResult) -> f64 {
        base.throughput_ipns() / self.throughput_ipns()
    }

    /// Speedup over `base` (higher is faster).
    pub fn speedup_over(&self, base: &RunResult) -> f64 {
        self.throughput_ipns() / base.throughput_ipns()
    }

    /// Merged statistics over all CPUs.
    pub fn merged(&self) -> CoreStats {
        let mut m = CoreStats::default();
        for c in &self.cpus {
            m.merge(c);
        }
        m
    }

    /// Wall cycles of the window (same for every CPU: one clock domain).
    pub fn wall_cycles(&self) -> u64 {
        self.clock.cycles(self.window)
    }

    /// The Figure-5 breakdown: CPU busy / L2-hit stall / L2-miss stall
    /// fractions of aggregate time.
    pub fn breakdown(&self) -> CpuBreakdown {
        let m = self.merged();
        let total = (self.wall_cycles() * self.cpus.len() as u64).max(1) as f64;
        let l2_hit = m.l2_hit_stall() as f64 / total;
        let l2_miss = m.l2_miss_stall() as f64 / total;
        CpuBreakdown {
            busy: (1.0 - l2_hit - l2_miss).max(0.0),
            l2_hit,
            l2_miss,
        }
    }

    /// The Figure-6(b) L1-miss breakdown: fractions of all L1 misses
    /// served by the L2, by another on-chip L1, and by memory.
    pub fn l1_miss_breakdown(&self) -> (f64, f64, f64) {
        let m = self.merged();
        let total = (m.fills_l2_hit() + m.fills_l2_fwd() + m.fills_l2_miss()).max(1) as f64;
        (
            m.fills_l2_hit() as f64 / total,
            m.fills_l2_fwd() as f64 / total,
            m.fills_l2_miss() as f64 / total,
        )
    }

    /// L1 misses per thousand instructions (both caches).
    pub fn mpki(&self) -> f64 {
        let m = self.merged();
        (m.l1i_misses + m.l1d_misses + m.sb_reqs) as f64 / (m.instrs.max(1) as f64 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piranha_types::FillSource;

    fn mk(name: &str, instrs: u64, window_ns: u64) -> RunResult {
        let mut s = CoreStats {
            instrs,
            ..Default::default()
        };
        s.record_fill(FillSource::L2Hit, 100);
        s.record_fill(FillSource::LocalMem, 300);
        RunResult::new(
            name.into(),
            Duration::from_ns(window_ns),
            Clock::from_mhz(500),
            vec![s],
        )
    }

    #[test]
    fn throughput_and_normalization() {
        let fast = mk("fast", 10_000, 1_000);
        let slow = mk("slow", 10_000, 2_900);
        assert!((fast.throughput_ipns() - 10.0).abs() < 1e-9);
        let norm = slow.normalized_time_vs(&fast);
        assert!((norm - 2.9).abs() < 0.01, "slow is 2.9x slower: {norm}");
        assert!((fast.speedup_over(&slow) - 2.9).abs() < 0.01);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let r = mk("x", 1000, 2_000); // 1000 cycles at 500MHz
        let b = r.breakdown();
        assert!((b.busy + b.l2_hit + b.l2_miss - 1.0).abs() < 1e-9);
        assert!((b.l2_hit - 0.1).abs() < 1e-9);
        assert!((b.l2_miss - 0.3).abs() < 1e-9);
    }

    #[test]
    fn miss_breakdown_normalizes() {
        let r = mk("x", 1000, 1_000);
        let (hit, fwd, miss) = r.l1_miss_breakdown();
        assert!((hit + fwd + miss - 1.0).abs() < 1e-9);
        assert_eq!(fwd, 0.0);
        assert!((hit - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stall_table_rows_partition_the_window() {
        let r = mk("x", 1000, 2_000); // 1000 wall cycles at 500 MHz
        let t = r.stall_table();
        assert_eq!(t.categories.len(), 6);
        assert_eq!(t.rows.len(), r.cpus.len() + 1, "per-core rows + all");
        assert!(t.sums_to_one(1e-6));
        let f = t.rows[0].fractions();
        // 100 cycles L2-hit stall + 300 local-mem stall of 1000.
        assert!((f[1] - 0.1).abs() < 1e-9, "l2_hit fraction: {}", f[1]);
        assert!((f[3] - 0.3).abs() < 1e-9, "local_mem fraction: {}", f[3]);
        assert!((f[0] - 0.6).abs() < 1e-9, "busy is the remainder: {}", f[0]);
    }

    #[test]
    fn fingerprint_ignores_metrics() {
        let a = mk("x", 1000, 2_000);
        let mut b = mk("x", 1000, 2_000);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.metrics = piranha_probe::MetricsSnapshot::from_entries(vec![(
            "kernel.events.popped".into(),
            piranha_probe::MetricValue::Count(42),
        )]);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "metrics must not affect the simulated fingerprint"
        );
        let c = mk("x", 1001, 2_000);
        assert_ne!(a.fingerprint(), c.fingerprint(), "simulated change shows");
    }

    #[test]
    fn fingerprint_ignores_sample_estimate() {
        let a = mk("x", 1000, 2_000);
        let mut b = mk("x", 1000, 2_000);
        b.sample = Some(piranha_sample::SampleEstimate {
            cpi_mean: 2.0,
            cpi_ci95: 0.1,
            stall_mean: 0.3,
            stall_ci: 0.02,
            windows: 8,
            detailed_fraction: 0.1,
            detailed_instrs: 1000,
            warmed_instrs: 9000,
        });
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "a sampling estimate must not affect the simulated fingerprint"
        );
    }

    #[test]
    fn fingerprint_ignores_traffic_summary() {
        let a = mk("x", 1000, 2_000);
        let mut b = mk("x", 1000, 2_000);
        let mut latency = piranha_kernel::Histogram::new();
        latency.record(Duration::from_ns(1234));
        b.traffic = Some(TrafficSummary {
            ledger: piranha_traffic::TrafficLedger {
                generated: 10,
                accepted: 8,
                dropped: 2,
                deferred: 0,
                completed: 8,
            },
            latency,
        });
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "traffic observations must not affect the simulated fingerprint"
        );
    }

    #[test]
    fn fingerprint_reflects_availability_and_committed_work() {
        let a = mk("x", 1000, 2_000);
        let mut b = mk("x", 1000, 2_000);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.availability.injected = 1;
        b.availability.corrected = 1;
        assert_ne!(
            a.fingerprint(),
            b.fingerprint(),
            "a recovered fault is a simulated difference"
        );
        let mut c = mk("x", 1000, 2_000);
        c.committed_txns = Some(17);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn mpki_counts_all_miss_classes() {
        let mut s = CoreStats {
            instrs: 10_000,
            l1i_misses: 5,
            l1d_misses: 10,
            sb_reqs: 5,
            ..Default::default()
        };
        s.record_fill(FillSource::L2Hit, 0);
        let r = RunResult::new(
            "m".into(),
            Duration::from_ns(1),
            Clock::from_mhz(500),
            vec![s],
        );
        assert!((r.mpki() - 2.0).abs() < 1e-9);
    }
}
