//! One node (chip) of the machine, assembled from the subsystem
//! component adapters.
//!
//! A node owns exactly the hardware one Piranha chip carries: the CPU
//! cluster with its instruction streams, the cache complex (L1s + L2
//! banks), the memory array with the in-memory directory, the two
//! protocol engines, the intra-chip switch, the system controller, and
//! the node's RAS policy. The node is pure composition — every behavior
//! lives in a subsystem crate's [`Component`](piranha_kernel::Component)
//! adapter; the dispatch layer routes events between them.

use piranha_types::FastMap;
use std::collections::VecDeque;

use piranha_cache::{BankAction, CacheComplex, L1Set, L2Bank, Slot};
use piranha_cpu::{CoreModel, CpuAction, CpuCluster, InOrderCore, InstrStream, OooCore};
use piranha_faults::FaultPlane;
use piranha_ics::Ics;
use piranha_kernel::{Partition, Port};
use piranha_mem::{DirEntry, MemArray, MemBank, MemData};
use piranha_net::Depart;
use piranha_parsim::Outbox;
use piranha_probe::Probe;
use piranha_protocol::coherence::DirStore;
use piranha_protocol::{EngineAction, EngineComplex, LineRange, ProtoMsg, RasPolicy};
use piranha_traffic::TrafficPlane;
use piranha_types::{LineAddr, NodeId};

use crate::config::{CoreKind, SystemConfig};
use crate::dispatch::{Ev, Item};
use crate::sysctl::SystemController;

/// One node (chip) of the machine.
pub(crate) struct Node {
    /// The CPU cluster: cores, streams, done-tracking.
    pub(crate) cpus: CpuCluster,
    /// L1s + L2 banks + bank occupancy.
    pub(crate) caches: CacheComplex,
    /// RDRAM banks + in-memory directory.
    pub(crate) mem: MemArray,
    /// Home/remote protocol engines + occupancy + replay recovery.
    pub(crate) engines: EngineComplex,
    /// The intra-chip switch.
    pub(crate) ics: Ics,
    /// The system controller (hot start/stop, boot, monitoring).
    pub(crate) sc: SystemController,
    /// Per-node RAS policy: persistent-memory journal + mirror log
    /// (paper §2.7).
    pub(crate) ras: RasPolicy,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("cpus", &self.cpus.len())
            .finish_non_exhaustive()
    }
}

impl Node {
    /// Build node `n` of a `total_nodes` machine. I/O nodes get one CPU
    /// and one bank; processing nodes get the configured complement.
    pub(crate) fn new(
        cfg: &SystemConfig,
        n: usize,
        total_nodes: usize,
        streams: Vec<Box<dyn InstrStream>>,
    ) -> Self {
        let n_cpus = streams.len();
        let is_io = n >= cfg.nodes;
        let n_banks = if is_io { 1 } else { cfg.l2_banks };
        let cores: Vec<Box<dyn CoreModel>> = (0..n_cpus)
            .map(|_| match cfg.core {
                CoreKind::InOrder(c) => Box::new(InOrderCore::new(c)) as Box<dyn CoreModel>,
                CoreKind::Ooo(c) => Box::new(OooCore::new(c)) as Box<dyn CoreModel>,
            })
            .collect();
        let banks: Vec<L2Bank> = (0..n_banks)
            .map(|b| L2Bank::new(cfg.l2_bank, b as u64, n_banks as u64))
            .collect();
        let mut sc = SystemController::new(NodeId(n as u16), n_cpus);
        let peers: Vec<NodeId> = (0..total_nodes)
            .filter(|&m| m != n)
            .map(|m| NodeId(m as u16))
            .collect();
        sc.interconnect_boot(&peers, 1024);
        let mut ras = RasPolicy::new(NodeId(n as u16));
        if cfg.faults.enabled() && cfg.faults.mirror_lines > 0 {
            // Mirror the low lines on every node; `on_home_write` only
            // fires at a line's home, so each node's mirror log covers
            // exactly its own homed slice of the range.
            ras.register_mirrored(LineRange {
                start: LineAddr(0),
                end: LineAddr(cfg.faults.mirror_lines),
            });
        }
        Node {
            cpus: CpuCluster::new(cores, streams, cfg.cpu_quantum),
            caches: CacheComplex::new(L1Set::new(n_cpus, cfg.l1), banks),
            mem: MemArray::new((0..n_banks).map(|_| MemBank::new(cfg.mem)).collect()),
            engines: EngineComplex::new(
                NodeId(n as u16),
                total_nodes,
                cfg.cmi_routes,
                cfg.faults.replay_timeout_cycles,
            ),
            ics: Ics::new(cfg.ics),
            sc,
            ras,
        }
    }
}

/// One node plus everything the dispatch layer needs to advance it
/// independently of the other nodes: its own event partition, fault
/// plane, version counter, outstanding-request table, reusable ports,
/// and the outbox that buffers cross-node departures until the next
/// quantum barrier.
///
/// A lane is the unit of parallel-in-space execution: inside a quantum
/// a worker thread owns one lane exclusively and touches nothing else,
/// so lanes only need `Send` (they migrate between rounds), never
/// `Sync`. All cross-lane traffic flows through [`Outbox`] and is
/// merged deterministically at the barrier.
pub(crate) struct NodeLane {
    /// This lane's node index (also its partition index).
    pub(crate) index: usize,
    /// The chip itself.
    pub(crate) node: Node,
    /// The lane-local event partition.
    pub(crate) events: Partition<Ev>,
    /// Cross-node departures buffered inside the current quantum.
    pub(crate) outbox: Outbox<Depart<ProtoMsg>>,
    /// The lane's fault oracle (node 0 owns the scripted schedule; the
    /// rest draw from node-decorrelated random streams).
    pub(crate) faults: FaultPlane,
    /// The lane's open-loop traffic plane (disabled — and PRNG-free —
    /// unless the config enables traffic).
    pub(crate) traffic: TrafficPlane,
    /// Per-core `traffic.nodeN.coreM.txn_latency_ns` histogram handles
    /// (populated by `set_probe` only when traffic is on).
    pub(crate) traffic_hists: Vec<piranha_probe::HistogramHandle>,
    /// Clone of the machine probe (no-op when disabled).
    pub(crate) probe: Probe,
    /// Lane-local version counter; strides by `version_stride` so
    /// stamps stay globally unique without a shared counter.
    pub(crate) versions: u64,
    /// 1 on a single-lane machine (the legacy global numbering), else
    /// the lane count.
    pub(crate) version_stride: u64,
    /// Outstanding CPU requests of this node: (slot, line) → request id.
    pub(crate) outstanding: FastMap<(Slot, LineAddr), u64>,
    /// Instructions retired by this node's CPUs, tracked incrementally.
    pub(crate) instrs_retired: u64,
    /// This node's CPUs that are enabled and not yet done.
    pub(crate) unfinished: usize,
    /// Reusable work queue for `apply`.
    pub(crate) work: VecDeque<Item>,
    /// Reusable output ports, one per action type.
    pub(crate) cpu_port: Port<CpuAction>,
    pub(crate) bank_port: Port<BankAction>,
    pub(crate) mem_port: Port<MemData>,
    pub(crate) eng_port: Port<EngineAction>,
}

impl NodeLane {
    /// Wrap `node` as lane `index` of a `lanes`-wide machine.
    pub(crate) fn new(
        index: usize,
        lanes: usize,
        node: Node,
        faults: FaultPlane,
        traffic: TrafficPlane,
    ) -> Self {
        NodeLane {
            index,
            node,
            events: Partition::new(),
            outbox: Outbox::default(),
            faults,
            traffic,
            traffic_hists: Vec::new(),
            probe: Probe::disabled(),
            versions: index as u64,
            version_stride: lanes as u64,
            outstanding: FastMap::default(),
            instrs_retired: 0,
            unfinished: 0,
            work: VecDeque::new(),
            cpu_port: Port::new(),
            bank_port: Port::new(),
            mem_port: Port::new(),
            eng_port: Port::new(),
        }
    }
}

impl std::fmt::Debug for NodeLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeLane")
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

/// View of one node's memory banks as the home engine's directory store.
pub(crate) struct NodeDirs<'a> {
    pub(crate) banks: &'a mut [MemBank],
}

impl DirStore for NodeDirs<'_> {
    fn dir(&self, line: LineAddr) -> DirEntry {
        self.banks[(line.0 % self.banks.len() as u64) as usize].directory(line)
    }
    fn set_dir(&mut self, line: LineAddr, dir: DirEntry) {
        let n = self.banks.len() as u64;
        self.banks[(line.0 % n) as usize].set_directory(line, dir);
    }
    fn mem_version(&self, line: LineAddr) -> u64 {
        self.banks[(line.0 % self.banks.len() as u64) as usize].version(line)
    }
}
