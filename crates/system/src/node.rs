//! One node (chip) of the machine, assembled from the subsystem
//! component adapters.
//!
//! A node owns exactly the hardware one Piranha chip carries: the CPU
//! cluster with its instruction streams, the cache complex (L1s + L2
//! banks), the memory array with the in-memory directory, the two
//! protocol engines, the intra-chip switch, the system controller, and
//! the node's RAS policy. The node is pure composition — every behavior
//! lives in a subsystem crate's [`Component`](piranha_kernel::Component)
//! adapter; the dispatch layer routes events between them.

use piranha_cache::{CacheComplex, L1Set, L2Bank};
use piranha_cpu::{CoreModel, CpuCluster, InOrderCore, InstrStream, OooCore};
use piranha_ics::Ics;
use piranha_mem::{DirEntry, MemArray, MemBank};
use piranha_protocol::coherence::DirStore;
use piranha_protocol::{EngineComplex, LineRange, RasPolicy};
use piranha_types::{LineAddr, NodeId};

use crate::config::{CoreKind, SystemConfig};
use crate::sysctl::SystemController;

/// One node (chip) of the machine.
pub(crate) struct Node {
    /// The CPU cluster: cores, streams, done-tracking.
    pub(crate) cpus: CpuCluster,
    /// L1s + L2 banks + bank occupancy.
    pub(crate) caches: CacheComplex,
    /// RDRAM banks + in-memory directory.
    pub(crate) mem: MemArray,
    /// Home/remote protocol engines + occupancy + replay recovery.
    pub(crate) engines: EngineComplex,
    /// The intra-chip switch.
    pub(crate) ics: Ics,
    /// The system controller (hot start/stop, boot, monitoring).
    pub(crate) sc: SystemController,
    /// Per-node RAS policy: persistent-memory journal + mirror log
    /// (paper §2.7).
    pub(crate) ras: RasPolicy,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("cpus", &self.cpus.len())
            .finish_non_exhaustive()
    }
}

impl Node {
    /// Build node `n` of a `total_nodes` machine. I/O nodes get one CPU
    /// and one bank; processing nodes get the configured complement.
    pub(crate) fn new(
        cfg: &SystemConfig,
        n: usize,
        total_nodes: usize,
        streams: Vec<Box<dyn InstrStream>>,
    ) -> Self {
        let n_cpus = streams.len();
        let is_io = n >= cfg.nodes;
        let n_banks = if is_io { 1 } else { cfg.l2_banks };
        let cores: Vec<Box<dyn CoreModel>> = (0..n_cpus)
            .map(|_| match cfg.core {
                CoreKind::InOrder(c) => Box::new(InOrderCore::new(c)) as Box<dyn CoreModel>,
                CoreKind::Ooo(c) => Box::new(OooCore::new(c)) as Box<dyn CoreModel>,
            })
            .collect();
        let banks: Vec<L2Bank> = (0..n_banks)
            .map(|b| L2Bank::new(cfg.l2_bank, b as u64, n_banks as u64))
            .collect();
        let mut sc = SystemController::new(NodeId(n as u16), n_cpus);
        let peers: Vec<NodeId> = (0..total_nodes)
            .filter(|&m| m != n)
            .map(|m| NodeId(m as u16))
            .collect();
        sc.interconnect_boot(&peers, 1024);
        let mut ras = RasPolicy::new(NodeId(n as u16));
        if cfg.faults.enabled() && cfg.faults.mirror_lines > 0 {
            // Mirror the low lines on every node; `on_home_write` only
            // fires at a line's home, so each node's mirror log covers
            // exactly its own homed slice of the range.
            ras.register_mirrored(LineRange {
                start: LineAddr(0),
                end: LineAddr(cfg.faults.mirror_lines),
            });
        }
        Node {
            cpus: CpuCluster::new(cores, streams, cfg.cpu_quantum),
            caches: CacheComplex::new(L1Set::new(n_cpus, cfg.l1), banks),
            mem: MemArray::new((0..n_banks).map(|_| MemBank::new(cfg.mem)).collect()),
            engines: EngineComplex::new(
                NodeId(n as u16),
                total_nodes,
                cfg.cmi_routes,
                cfg.faults.replay_timeout_cycles,
            ),
            ics: Ics::new(cfg.ics),
            sc,
            ras,
        }
    }
}

/// View of one node's memory banks as the home engine's directory store.
pub(crate) struct NodeDirs<'a> {
    pub(crate) banks: &'a mut [MemBank],
}

impl DirStore for NodeDirs<'_> {
    fn dir(&self, line: LineAddr) -> DirEntry {
        self.banks[(line.0 % self.banks.len() as u64) as usize].directory(line)
    }
    fn set_dir(&mut self, line: LineAddr, dir: DirEntry) {
        let n = self.banks.len() as u64;
        self.banks[(line.0 % n) as usize].set_directory(line, dir);
    }
    fn mem_version(&self, line: LineAddr) -> u64 {
        self.banks[(line.0 % self.banks.len() as u64) as usize].version(line)
    }
}
