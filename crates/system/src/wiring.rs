//! Machine assembly: topology, node construction, and observability
//! wiring (track naming, metric sampling, utilization reports).

use piranha_kernel::{Lookahead, Port};
use piranha_net::{Fabric, Network, Topology, TopologyKind};
use piranha_probe::Probe;
use piranha_types::{NodeId, SimTime};
use piranha_workloads::{SynthConfig, SynthStream};

use crate::config::SystemConfig;
use crate::dispatch::Ev;
use crate::machine::Machine;
use crate::node::{Node, NodeLane};

/// Chrome-trace track layout: each node owns a stride of 64 track ids —
/// CPUs at `base + cpu`, L2 banks at `base + TRACK_BANK + bank`, memory
/// channels at `base + TRACK_MEM + bank`, then the two protocol engines
/// and the router port.
pub(crate) const TRACK_STRIDE: u32 = 64;
pub(crate) const TRACK_BANK: u32 = 16;
pub(crate) const TRACK_MEM: u32 = 24;
pub(crate) const TRACK_HOME: u32 = 32;
pub(crate) const TRACK_REMOTE: u32 = 33;
pub(crate) const TRACK_NET: u32 = 34;

pub(crate) fn track_base(node: usize) -> u32 {
    node as u32 * TRACK_STRIDE
}

/// Build the interconnect topology for `kind` over the machine's lanes
/// (processing + I/O nodes).
///
/// [`TopologyKind::Auto`] reproduces the paper layout: processing nodes
/// fully connected (gluelessly possible up to five with four channels
/// each) or meshed, with each I/O node attached by its two channels to
/// two processing nodes for redundancy (§2.6.1). The mesh case uses
/// [`Topology::mesh_of`], which builds **exactly** `total` nodes — the
/// earlier `mesh(w, ceil(total/w))` rounding could instantiate phantom
/// topology nodes the machine doesn't have (e.g. 9 for a 7-lane
/// system), silently widening the lookahead matrix.
///
/// The explicit kinds treat every lane — processing or I/O — as an
/// equal fabric member (the scaling sweeps don't model the dual-homed
/// I/O attachment). Only [`Topology::fat_tree`] creates nodes beyond
/// the lanes: its interior switches are deliberate phantom nodes that
/// route but never source or sink traffic, which is why the lookahead
/// is built from [`Fabric::host_pair_bounds`] rather than the full
/// matrix.
pub(crate) fn build_topology(kind: TopologyKind, processing: usize, io: usize) -> Topology {
    let total = processing + io;
    if total == 1 {
        // A single node never routes; a trivial two-node ring keeps the
        // network object well-formed (and unused).
        return Topology::ring(2);
    }
    match kind {
        TopologyKind::Auto => {
            if io == 0 {
                return if total <= 5 {
                    Topology::fully_connected(total)
                } else {
                    Topology::mesh_of(total)
                };
            }
            // Custom: processing clique + dual-homed I/O nodes.
            let mut adj: Vec<Vec<NodeId>> = (0..total).map(|_| Vec::new()).collect();
            for a in 0..processing {
                for b in (a + 1)..processing {
                    adj[a].push(NodeId(b as u16));
                    adj[b].push(NodeId(a as u16));
                }
            }
            for i in 0..io {
                let n = processing + i;
                let first = i % processing;
                adj[n].push(NodeId(first as u16));
                adj[first].push(NodeId(n as u16));
                if processing > 1 {
                    let second = (i + 1) % processing;
                    adj[n].push(NodeId(second as u16));
                    adj[second].push(NodeId(n as u16));
                }
            }
            Topology::custom(adj)
        }
        TopologyKind::Ring => Topology::ring(total),
        TopologyKind::Mesh => Topology::mesh_of(total),
        TopologyKind::Torus => {
            // The most-square factorization with both sides ≥ 2; a node
            // count with none (primes, 2·prime oddities) degenerates to
            // the ring, which is the 1-D torus.
            let mut best = None;
            let mut w = (total as f64).sqrt().floor() as usize;
            while w >= 2 {
                if total.is_multiple_of(w) && total / w >= 2 {
                    best = Some((w, total / w));
                    break;
                }
                w -= 1;
            }
            match best {
                Some((w, h)) => Topology::torus(w, h),
                None => Topology::ring(total),
            }
        }
        TopologyKind::FatTree => Topology::fat_tree(total),
    }
}

impl Machine {
    /// Build a machine with explicit per-CPU streams (for examples and
    /// tests driving custom programs, e.g. through `piranha_cpu::IsaStream`).
    ///
    /// # Panics
    ///
    /// Panics if the number of streams does not match the CPU count, or
    /// if the network configuration yields a zero minimum delivery
    /// latency (the conservative engine's lookahead must be strictly
    /// positive, which any real link serialization + hop time is).
    pub fn with_streams(
        cfg: SystemConfig,
        mut streams: Vec<Box<dyn piranha_cpu::InstrStream>>,
    ) -> Self {
        assert_eq!(
            streams.len(),
            cfg.workload_cpus(),
            "one stream per processing CPU (I/O nodes drive themselves)"
        );
        let total_nodes = cfg.nodes + cfg.io_nodes;
        let topo = build_topology(cfg.topology, cfg.nodes, cfg.io_nodes);
        let net = Fabric::new(Network::new(topo, cfg.net));
        // The lookahead matrix is computed from the actual topology:
        // `bound(s, d)` = hop distance × the per-hop minimum (Table 1:
        // short-packet serialization + one hop). Its global minimum is
        // the window quantum; `Lookahead::from_bounds` asserts it is
        // strictly positive — the conservative engine has no lookahead
        // otherwise. Only the *host* submatrix matters: phantom switch
        // nodes (fat-tree interior) never source or sink events, and
        // host-to-host distances are computed on the full graph, so
        // routing through switches is already priced in. On the paper's
        // glueless fully connected configs the matrix degenerates to
        // the uniform fabric-wide minimum.
        let lookahead = Lookahead::from_bounds(net.host_pair_bounds());
        let mut lanes = Vec::with_capacity(total_nodes);
        for n in 0..total_nodes {
            let node_streams: Vec<Box<dyn piranha_cpu::InstrStream>> = if n >= cfg.nodes {
                // The I/O chip's CPU runs device-driver/DMA traffic,
                // fully coherent with the rest of the system. It stays
                // closed-loop even in traffic mode — devices are not
                // user transactions.
                vec![Box::new(SynthStream::new(
                    SynthConfig::dma(),
                    n - cfg.nodes,
                    cfg.io_nodes,
                    cfg.seed ^ 0x10,
                ))]
            } else {
                // Traffic mode wraps each workload stream in an
                // open-loop admission gate; disabled traffic passes the
                // streams through untouched (bit-identical goldens).
                piranha_traffic::wrap_streams(
                    &cfg.traffic,
                    streams.drain(..cfg.cpus_per_node).collect(),
                )
            };
            let n_node_cpus = node_streams.len();
            let node = Node::new(&cfg, n, total_nodes, node_streams);
            // Node 0's plane owns the scripted fault schedule; the
            // other lanes draw decorrelated random streams (a shared
            // PRNG would serialize the lanes).
            let faults = piranha_faults::FaultPlane::for_node(cfg.faults.clone(), cfg.seed, n);
            // Same discipline for traffic: per-node decorrelated arrival
            // schedules, disabled (and PRNG-free) at zero rate. I/O
            // nodes always get a disabled plane.
            let traffic = if n < cfg.nodes {
                piranha_traffic::TrafficPlane::for_node(
                    cfg.traffic.clone(),
                    cfg.seed,
                    n,
                    n_node_cpus,
                    cfg.cpu_clock,
                )
            } else {
                piranha_traffic::TrafficPlane::disabled()
            };
            let mut lane = NodeLane::new(n, total_nodes, node, faults, traffic);
            for c in 0..lane.node.cpus.len() {
                lane.events.schedule(
                    SimTime::ZERO,
                    Ev::Cpu(piranha_cpu::CpuEvent::Step { cpu: c }),
                );
            }
            lane.unfinished = lane.node.cpus.len();
            lanes.push(lane);
        }
        Machine {
            cfg,
            lanes,
            net,
            probe: Probe::disabled(),
            net_port: Port::new(),
            lookahead,
            parsim: crate::machine::ParsimStats::default(),
            tally: crate::warm::SampleTally::default(),
            workers: 1,
            clock: SimTime::ZERO,
        }
    }

    /// Attach an observability probe; names this machine's tracks for
    /// the Chrome-trace exporter. Pass [`Probe::disabled`] to detach.
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
        for lane in &mut self.lanes {
            lane.probe = self.probe.clone();
            if lane.traffic.enabled() {
                let n = lane.index;
                lane.traffic_hists = (0..lane.node.cpus.len())
                    .map(|c| {
                        lane.probe
                            .histogram(&format!("traffic.node{n}.core{c}.txn_latency_ns"))
                    })
                    .collect();
            }
        }
        if !self.probe.is_enabled() {
            return;
        }
        for (n, lane) in self.lanes.iter().enumerate() {
            let node = &lane.node;
            let base = track_base(n);
            for c in 0..node.cpus.len() {
                self.probe
                    .name_track(base + c as u32, format!("node{n}.cpu{c}"));
            }
            for b in 0..node.caches.bank_count() {
                self.probe
                    .name_track(base + TRACK_BANK + b as u32, format!("node{n}.l2bank{b}"));
                self.probe
                    .name_track(base + TRACK_MEM + b as u32, format!("node{n}.mem{b}"));
            }
            self.probe
                .name_track(base + TRACK_HOME, format!("node{n}.home-engine"));
            self.probe
                .name_track(base + TRACK_REMOTE, format!("node{n}.remote-engine"));
            self.probe
                .name_track(base + TRACK_NET, format!("node{n}.router"));
        }
    }

    /// Pull-sample every subsystem's authoritative counters into the
    /// probe's metric registry. The subsystems keep the single source of
    /// truth; the registry holds the latest sampled reading. A no-op
    /// when the probe is disabled.
    pub fn sample_metrics(&self) {
        if !self.probe.is_enabled() {
            return;
        }
        let p = &self.probe;
        let (scheduled, popped, migrated) = self.lanes.iter().fold((0, 0, 0), |(s, o, m), l| {
            (
                s + l.events.scheduled(),
                o + l.events.popped(),
                m + l.events.migrated(),
            )
        });
        p.publish_counter("kernel.events.scheduled", scheduled);
        p.publish_counter("kernel.events.popped", popped);
        p.publish_counter("kernel.events.migrated", migrated);
        p.publish_counter("machine.instrs", self.total_instrs());
        p.publish_gauge("mem.page_hit_rate", self.mem_page_hit_rate());
        p.publish_counter("net.delivered", self.net.delivered());
        p.publish_counter("net.deflections", self.net.deflections());
        p.publish_counter("net.retransmits", self.net.retransmits());
        p.publish_gauge("net.mean_hops", self.net.mean_hops());
        // Fabric congestion counters: queue-discipline losses/stalls,
        // per-link wire-time occupancy, per-node deflection split.
        let fs = self.net.stats();
        p.publish_counter("net.drops", fs.drops);
        p.publish_counter("net.pauses", fs.pauses);
        p.publish_counter("net.pause_ns", fs.pause_time.as_ns());
        p.publish_counter("net.links", fs.links as u64);
        p.publish_counter("net.link_busy_ns", fs.link_busy.as_ns());
        p.publish_counter("net.link_max_busy_ns", fs.max_link_busy.as_ns());
        p.publish_gauge(
            "net.occupancy",
            fs.occupancy(self.now().since(SimTime::ZERO)),
        );
        for (n, d) in fs
            .node_deflections
            .iter()
            .enumerate()
            .take(self.lanes.len())
        {
            p.publish_counter(&format!("net.node{n}.deflections"), *d);
        }
        let ps = self.parsim_stats();
        p.publish_counter("parsim.rounds", ps.rounds);
        p.publish_counter("parsim.windows", ps.windows);
        p.publish_counter("parsim.empty_windows", ps.empty_windows);
        p.publish_counter("parsim.merged_events", ps.merged_events);
        p.publish_counter("parsim.events", ps.events);
        let st = self.sample_tally();
        p.publish_counter("sample.windows", st.windows);
        p.publish_counter("sample.detailed_cycles", st.detailed_cycles);
        p.publish_counter("sample.warming_cycles", st.warming_cycles);
        let av = self.availability();
        p.publish_counter("faults.injected", av.injected);
        p.publish_counter("faults.corrected", av.corrected);
        p.publish_counter("faults.escalated", av.escalated);
        p.publish_counter("faults.retransmits", av.retransmits);
        p.publish_counter("faults.recovery_cycles", av.recovery_cycles);
        if let Some(ts) = self.traffic_summary() {
            // Offered vs. accepted load, machine-wide: the open-loop
            // generator's output against what the bounded queues took.
            p.publish_counter("traffic.generated", ts.ledger.generated);
            p.publish_counter("traffic.accepted", ts.ledger.accepted);
            p.publish_counter("traffic.dropped", ts.ledger.dropped);
            p.publish_counter("traffic.deferred", ts.ledger.deferred);
            p.publish_counter("traffic.completed", ts.ledger.completed);
        }
        for (n, lane) in self.lanes.iter().enumerate() {
            let node = &lane.node;
            for (c, core) in node.cpus.cores().enumerate() {
                let s = core.stats();
                let k = format!("cpu.node{n}.core{c}");
                p.publish_counter(&format!("{k}.instrs"), s.instrs);
                p.publish_counter(&format!("{k}.l1_hits"), s.l1_hits);
                p.publish_counter(&format!("{k}.l1i_misses"), s.l1i_misses);
                p.publish_counter(&format!("{k}.l1d_misses"), s.l1d_misses);
                p.publish_counter(&format!("{k}.sb_reqs"), s.sb_reqs);
                p.publish_counter(&format!("{k}.tlb_misses"), core.tlb_misses());
                p.publish_counter(&format!("{k}.stall_cycles"), s.total_stall());
            }
            p.publish_counter(
                &format!("cache.node{n}.bank_lookups"),
                node.caches.lookups(),
            );
            p.publish_counter(&format!("ics.node{n}.words"), node.ics.words_moved());
            p.publish_gauge(
                &format!("ics.node{n}.utilization"),
                node.ics.utilization(self.now()),
            );
            p.publish_counter(
                &format!("mem.node{n}.accesses"),
                node.mem.banks().iter().map(|m| m.rdram().accesses()).sum(),
            );
            p.publish_counter(
                &format!("protocol.node{n}.home_msgs"),
                node.engines.home().msgs_handled(),
            );
            p.publish_counter(
                &format!("protocol.node{n}.remote_msgs"),
                node.engines.remote().msgs_handled(),
            );
            p.publish_counter(&format!("protocol.node{n}.replays"), node.engines.replays());
            p.publish_counter(&format!("ras.node{n}.cap_faults"), node.ras.faults());
            if lane.traffic.enabled() {
                let l = lane.traffic.ledger();
                p.publish_counter(&format!("traffic.node{n}.generated"), l.generated);
                p.publish_counter(&format!("traffic.node{n}.accepted"), l.accepted);
                p.publish_counter(&format!("traffic.node{n}.dropped"), l.dropped);
                p.publish_counter(&format!("traffic.node{n}.deferred"), l.deferred);
                p.publish_counter(&format!("traffic.node{n}.completed"), l.completed);
            }
            p.publish_gauge(
                &format!("protocol.node{n}.tsrf_high_water"),
                node.engines
                    .home()
                    .tsrf_high_water()
                    .max(node.engines.remote().tsrf_high_water()) as f64,
            );
        }
    }

    /// Snapshot a machine-wide utilization report (the system
    /// controller's performance-monitoring role, §2).
    pub fn report(&self) -> crate::report::MachineReport {
        let nodes = self
            .lanes
            .iter()
            .map(|lane| {
                let n = &lane.node;
                let mem_accesses: u64 = n.mem.banks().iter().map(|m| m.rdram().accesses()).sum();
                let hits: f64 = n
                    .mem
                    .banks()
                    .iter()
                    .map(|m| m.rdram().page_hit_rate() * m.rdram().accesses() as f64)
                    .sum();
                crate::report::NodeReport {
                    ics_words: n.ics.words_moved(),
                    ics_utilization: n.ics.utilization(self.now()),
                    bank_lookups: n.caches.lookups(),
                    mem_accesses,
                    mem_page_hit_rate: if mem_accesses == 0 {
                        0.0
                    } else {
                        hits / mem_accesses as f64
                    },
                    home_msgs: n.engines.home().msgs_handled(),
                    remote_msgs: n.engines.remote().msgs_handled(),
                    home_instrs: n.engines.home().instr_executed(),
                    remote_instrs: n.engines.remote().instr_executed(),
                    tsrf_high_water: (
                        n.engines.home().tsrf_high_water(),
                        n.engines.remote().tsrf_high_water(),
                    ),
                    sc_packets: n.sc.packets_handled(),
                    core_units: n
                        .cpus
                        .streams()
                        .map(|s| {
                            s.units_completed()
                                .or_else(|| s.txns_committed())
                                .unwrap_or(0)
                        })
                        .collect(),
                }
            })
            .collect();
        crate::report::MachineReport {
            now: self.now(),
            nodes,
            net_delivered: self.net.delivered(),
            net_deflections: self.net.deflections(),
            net_mean_hops: self.net.mean_hops(),
            net_fabric: self.net.stats(),
            instrs: self.total_instrs(),
            parsim: self.parsim_stats(),
            traffic: self.traffic_summary(),
        }
    }
}
