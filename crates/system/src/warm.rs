//! Functional warming and sampled execution (`Machine::run_sampled`).
//!
//! SMARTS-style sampling needs a second execution regime: between
//! detailed measurement windows the CPUs retire instructions at fixed
//! IPC while every piece of *architectural* state — L1/L2 tags,
//! duplicate tags, TLBs, the in-memory directory, memory versions, the
//! RDRAM page table — keeps evolving exactly as the detailed model
//! would evolve it. The repo's component split makes this cheap to get
//! right: all coherence state transitions already happen synchronously
//! inside `Component::handle` calls, and the event calendar carries
//! *timing only*. Functional warming therefore drives the very same
//! handlers, but resolves each CPU miss synchronously through a small
//! work queue instead of scheduling latency-separated events — skipping
//! the calendar, the ICS transfer charges, the occupancy servers, and
//! the probe spans, which is where the speedup comes from.
//!
//! The regime switch is exact in both directions:
//!
//! * **detailed → functional** ([`Machine::drain_inflight`]): every
//!   in-flight miss is completed through the normal detailed dispatch
//!   (so its latency is honestly charged to the window that issued it),
//!   with CPU `Step` events deferred and re-queued — afterwards the
//!   calendar holds nothing but runnable-CPU steps.
//! * **functional → detailed**: nothing to do. The deferred steps are
//!   still queued; core cycle counters advanced during warming, so the
//!   first detailed dispatch computes issue/wake times from
//!   `now_cycle()` and simulated time jumps forward naturally — the
//!   warming interval appears as a fixed-IPC stretch of simulated time.

use std::collections::VecDeque;

use piranha_cache::{BankAction, BankEvent, CacheEvent, Mesi, Slot};
use piranha_cpu::{CoreStats, CpuAction, CpuCtx, CpuEvent, MemReq};
use piranha_kernel::Component;
use piranha_protocol::{EngineAction, EngineEvent, HomeIn, RemoteIn};
use piranha_sample::{SampleConfig, SampleDriver, SampleTarget, WindowSample};
use piranha_types::{CpuId, NodeId, SimTime};

use crate::dispatch::{Ev, LaneShared, NetPath};
use crate::machine::Machine;
use crate::node::{Node, NodeDirs, NodeLane};
use crate::result::RunResult;

/// Cumulative sampled-execution counters, published by the probe as
/// `sample.windows` / `sample.detailed_cycles` / `sample.warming_cycles`.
/// All-zero unless [`Machine::run_sampled`] ran. In-order cores warm at
/// exactly one cycle per instruction ([`piranha_cpu::CoreModel::warm_advance`]'s
/// fixed-IPC contract), so the two cycle counters split the run's
/// simulated core time between the regimes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SampleTally {
    /// Detailed measurement windows taken.
    pub windows: u64,
    /// Core cycles (summed over CPUs) spent under the detailed model,
    /// lead-ins included.
    pub detailed_cycles: u64,
    /// Core cycles (summed over CPUs) spent in functional warming.
    pub warming_cycles: u64,
}

/// One unit of synchronous warm-mode work. Lane-tagged because protocol
/// `Send`s cross nodes; everything else stays on its own lane.
enum WarmWork {
    Bank(usize, SimTime, CacheEvent),
    Eng(usize, SimTime, EngineEvent),
}

/// Reusable buffers for the warm loop. A warm step runs once per few
/// retired instructions and each miss produces a handful of actions;
/// allocating fresh `Vec`s at that rate dominates the loop, so the
/// buffers live across the whole warming phase instead.
#[derive(Default)]
struct WarmScratch {
    issues: Vec<(u64, MemReq)>,
    bank: Vec<BankAction>,
    eng: Vec<EngineAction>,
}

/// Deliver a warm-mode fill to the CPU that issued the request, at the
/// core's *current* cycle — zero stall, which is what makes warming
/// timing-free while the L1 fill/victim machinery runs for real.
fn warm_fill(
    lane: &mut NodeLane,
    t: SimTime,
    slot: Slot,
    line: piranha_types::LineAddr,
    source: piranha_types::FillSource,
) {
    let id = lane
        .outstanding
        .remove(&(slot, line))
        .unwrap_or_else(|| panic!("warm grant without outstanding request: {slot} {line}"));
    let cpu = slot.cpu().index();
    let mut port = std::mem::take(&mut lane.cpu_port);
    {
        let NodeLane {
            node,
            versions,
            version_stride,
            ..
        } = lane;
        let Node {
            cpus, caches, sc, ..
        } = node;
        let fill_cycle = cpus.core(cpu).now_cycle();
        let ctx = CpuCtx {
            l1s: caches.l1s_mut(),
            versions,
            version_stride: *version_stride,
            enabled: sc.cpu_enabled(CpuId(cpu as u8)),
            fill_cycle,
        };
        cpus.handle(t, CpuEvent::Fill { cpu, id, source }, ctx, &mut port);
    }
    // The Wake is implicit: the warm loop re-steps every CPU itself.
    port.drain().for_each(drop);
    lane.cpu_port = port;
}

/// Resolve queued warm work until the queue is empty. Mirrors the
/// action routing of `dispatch.rs` arm for arm, minus everything that
/// only exists for timing (ICS transfers, occupancy servers, calendar
/// scheduling, probe spans, fault hooks).
fn drain_warm_queue(
    lanes: &mut [NodeLane],
    sh: &LaneShared<'_>,
    q: &mut VecDeque<WarmWork>,
    scratch: &mut WarmScratch,
) {
    while let Some(w) = q.pop_front() {
        match w {
            WarmWork::Bank(li, t, ce) => {
                let lane = &mut lanes[li];
                let mut port = std::mem::take(&mut lane.bank_port);
                lane.node.caches.handle(t, ce, (), &mut port);
                scratch.bank.clear();
                scratch.bank.extend(port.drain().map(|(_, a)| a));
                lane.bank_port = port;
                for a in scratch.bank.drain(..) {
                    warm_bank_action(lanes, sh, q, li, t, a);
                }
            }
            WarmWork::Eng(li, t, ev) => {
                let lane = &mut lanes[li];
                let mut port = std::mem::take(&mut lane.eng_port);
                {
                    let Node { engines, mem, .. } = &mut lane.node;
                    let mut dirs = NodeDirs {
                        banks: mem.banks_mut(),
                    };
                    engines.handle(t, ev, &mut dirs, &mut port);
                }
                scratch.eng.clear();
                scratch.eng.extend(port.drain().map(|(_, a)| a));
                lane.eng_port = port;
                for a in scratch.eng.drain(..) {
                    warm_engine_action(lanes, sh, q, li, t, a);
                }
            }
        }
    }
}

fn warm_bank_action(
    lanes: &mut [NodeLane],
    sh: &LaneShared<'_>,
    q: &mut VecDeque<WarmWork>,
    li: usize,
    t: SimTime,
    a: BankAction,
) {
    let lane = &mut lanes[li];
    match a {
        BankAction::Grant {
            slot, line, source, ..
        } => warm_fill(lane, t, slot, line, source),
        // Pure ICS header traffic in detailed mode; the L1 state change
        // already happened inside the bank handler.
        BankAction::Inval { .. } | BankAction::Downgrade { .. } => {}
        BankAction::VictimDisplaced {
            slot,
            line,
            state,
            version,
        } => {
            let bank = lane.bank_of(line);
            q.push_back(WarmWork::Bank(
                li,
                t,
                CacheEvent {
                    bank,
                    ev: BankEvent::Victim {
                        slot,
                        line,
                        state,
                        version,
                    },
                },
            ));
        }
        BankAction::ReadMem { line } => {
            // Touch the RDRAM page state (so page-locality stays warm),
            // then return the data synchronously. The detailed path
            // reads version/directory at data-return time; with zero
            // latency "now" and "return time" coincide.
            let bank = lane.bank_of(line);
            lane.node.mem.access(bank, t, line);
            let version = lane.node.mem.version(bank, line);
            let remote = lane.node.mem.directory(bank, line).summary();
            q.push_back(WarmWork::Bank(
                li,
                t,
                CacheEvent {
                    bank,
                    ev: BankEvent::MemData {
                        line,
                        version,
                        remote,
                    },
                },
            ));
        }
        BankAction::WriteMem { line, version } => {
            let bank = lane.bank_of(line);
            let nd = &mut lane.node;
            nd.mem.write(bank, t, line, version);
            nd.ras.on_home_write(line, version);
        }
        BankAction::RemoteReq { slot: _, line, req } => {
            let home = NodeId(sh.home_of(line) as u16);
            q.push_back(WarmWork::Eng(
                li,
                t,
                EngineEvent::Remote(RemoteIn::LocalReq { line, req, home }),
            ));
        }
        BankAction::RemoteWb { line, version } => {
            let home = NodeId(sh.home_of(line) as u16);
            q.push_back(WarmWork::Eng(
                li,
                t,
                EngineEvent::Remote(RemoteIn::LocalWb {
                    line,
                    version,
                    home,
                }),
            ));
        }
        BankAction::HomeInvalRemote { line } => {
            q.push_back(WarmWork::Eng(
                li,
                t,
                EngineEvent::Home(HomeIn::LocalInvalRemotes { line }),
            ));
        }
        BankAction::HomeRecall { slot: _, line, req } => {
            q.push_back(WarmWork::Eng(
                li,
                t,
                EngineEvent::Home(HomeIn::LocalRecall { line, req }),
            ));
        }
        BankAction::ExportReply {
            line,
            version,
            dirty,
            cached,
        } => {
            let ev = if sh.home_of(line) == li {
                EngineEvent::Home(HomeIn::ExportReply {
                    line,
                    version,
                    dirty,
                    cached,
                })
            } else {
                EngineEvent::Remote(RemoteIn::ExportReply {
                    line,
                    version,
                    dirty,
                    cached,
                })
            };
            q.push_back(WarmWork::Eng(li, t, ev));
        }
    }
}

fn warm_engine_action(
    lanes: &mut [NodeLane],
    sh: &LaneShared<'_>,
    q: &mut VecDeque<WarmWork>,
    li: usize,
    t: SimTime,
    a: EngineAction,
) {
    match a {
        EngineAction::Send { to, msg } => {
            // Cross-node protocol message, delivered with zero latency:
            // in warm mode the network exists only to carry state.
            assert_ne!(
                to.index(),
                li,
                "protocol engine on node {li} sent itself a network message"
            );
            let dest = to.index();
            let is_home = sh.home_of(msg.line()) == dest;
            let from = NodeId(li as u16);
            let ev = if is_home {
                EngineEvent::Home(HomeIn::Msg { from, msg })
            } else {
                EngineEvent::Remote(RemoteIn::Msg { from, msg })
            };
            q.push_back(WarmWork::Eng(dest, t, ev));
        }
        EngineAction::Export { line, excl } => {
            let bank = lanes[li].bank_of(line);
            q.push_back(WarmWork::Bank(
                li,
                t,
                CacheEvent {
                    bank,
                    ev: BankEvent::Export { line, excl },
                },
            ));
        }
        EngineAction::Fill {
            line,
            excl,
            version,
            source,
        } => {
            let bank = lanes[li].bank_of(line);
            let grant = if excl { Mesi::Exclusive } else { Mesi::Shared };
            q.push_back(WarmWork::Bank(
                li,
                t,
                CacheEvent {
                    bank,
                    ev: BankEvent::RemoteFill {
                        line,
                        grant,
                        version,
                        source,
                    },
                },
            ));
        }
        EngineAction::Purge { line } => {
            let bank = lanes[li].bank_of(line);
            q.push_back(WarmWork::Bank(
                li,
                t,
                CacheEvent {
                    bank,
                    ev: BankEvent::InvalAll { line },
                },
            ));
        }
        EngineAction::MemWrite { line, version } => {
            let lane = &mut lanes[li];
            let bank = lane.bank_of(line);
            let nd = &mut lane.node;
            nd.mem.write(bank, t, line, version);
            nd.ras.on_home_write(line, version);
        }
    }
}

/// One warm step of one CPU: advance it up to the cluster quantum, then
/// resolve everything it issued synchronously through the real cache /
/// directory / protocol state machinery. Returns the instructions
/// retired and whether the step made any progress (retired, issued, or
/// finished its stream).
fn warm_step(
    lanes: &mut [NodeLane],
    sh: &LaneShared<'_>,
    q: &mut VecDeque<WarmWork>,
    scratch: &mut WarmScratch,
    li: usize,
    cpu: usize,
) -> (u64, bool) {
    let lane = &mut lanes[li];
    // Keep simulated time consistent for the RDRAM page-state updates:
    // the step happens at the core's own cycle clock (never before the
    // lane's last detailed event).
    let t = sh
        .cycle_to_time(lane.node.cpus.core(cpu).now_cycle())
        .max(lane.events.now());
    let mut port = std::mem::take(&mut lane.cpu_port);
    let retired = {
        let NodeLane {
            node,
            versions,
            version_stride,
            ..
        } = lane;
        let Node {
            cpus, caches, sc, ..
        } = node;
        let before = cpus.core(cpu).stats().instrs;
        let ctx = CpuCtx {
            l1s: caches.l1s_mut(),
            versions,
            version_stride: *version_stride,
            enabled: sc.cpu_enabled(CpuId(cpu as u8)),
            fill_cycle: 0,
        };
        cpus.handle(t, CpuEvent::WarmStep { cpu }, ctx, &mut port);
        cpus.core(cpu).stats().instrs - before
    };
    lane.instrs_retired += retired;
    scratch.issues.clear();
    let mut finished = false;
    for (_, act) in port.drain() {
        match act {
            CpuAction::Issue { at_cycle, req, .. } => scratch.issues.push((at_cycle, req)),
            // The warm loop re-steps CPUs itself; wakes are implicit.
            CpuAction::Wake { .. } => {}
            CpuAction::Finished { .. } => finished = true,
        }
    }
    lane.cpu_port = port;
    if finished {
        lane.unfinished -= 1;
    }
    // A zero-retirement step that discovers stream completion (the
    // stream ended inside the previous detailed window, with the final
    // `Finished` deferred to this step) still counts as progress: it
    // moved `unfinished` toward the loop's exit condition.
    let progressed = retired > 0 || !scratch.issues.is_empty() || finished;
    // Detach the issue list so `scratch` stays free for the queue
    // drain below; hand the buffer back afterwards to keep capacity.
    let mut issues = std::mem::take(&mut scratch.issues);
    for (at_cycle, req) in issues.drain(..) {
        let ti = sh.cycle_to_time(at_cycle).max(t);
        let lane = &mut lanes[li];
        let slot = Slot::new(CpuId(cpu as u8), req.kind);
        let prev = lane.outstanding.insert((slot, req.line), req.id);
        assert!(
            prev.is_none(),
            "duplicate outstanding warm request for {slot} {}",
            req.line
        );
        let bank = lane.bank_of(req.line);
        let home_local = sh.home_of(req.line) == li;
        q.push_back(WarmWork::Bank(
            li,
            ti,
            CacheEvent {
                bank,
                ev: BankEvent::Miss {
                    slot,
                    req: req.req,
                    line: req.line,
                    home_local,
                    store_version: req.store_version,
                },
            },
        ));
        drain_warm_queue(lanes, sh, q, scratch);
    }
    scratch.issues = issues;
    (retired, progressed)
}

impl Machine {
    /// Core cycles summed over every CPU (all CPUs share one clock
    /// domain, so the sum is well defined).
    pub(crate) fn total_core_cycles(&self) -> u64 {
        self.lanes
            .iter()
            .flat_map(|l| l.node.cpus.cores().map(|c| c.now_cycle()))
            .sum()
    }

    fn per_cpu_cycles(&self) -> Vec<u64> {
        self.lanes
            .iter()
            .flat_map(|l| l.node.cpus.cores().map(|c| c.now_cycle()))
            .collect()
    }

    /// Cumulative sampled-execution counters (all-zero unless
    /// [`Machine::run_sampled`] ran).
    pub fn sample_tally(&self) -> SampleTally {
        self.tally
    }

    /// A digest of every piece of *architectural* state the functional
    /// warming path claims to keep identical to detailed execution: L1
    /// tag/MESI/version occupancy, i/d TLB residency, L2 array
    /// occupancy, the duplicate-tag directory, and the in-memory
    /// version and directory stores. Deliberately excludes everything
    /// timing-related (cycles, stamps, occupancy servers, the
    /// calendar), so two runs that executed the same instructions —
    /// one detailed, one warm — digest identically. This is the
    /// warming-fidelity test's oracle, not a performance path.
    pub fn arch_state_digest(&self) -> u64 {
        let mut repr = String::new();
        for lane in &self.lanes {
            let nd = &lane.node;
            repr.push_str(&format!("node{}:", lane.index));
            for (slot, l1) in nd.caches.l1s().iter() {
                let mut resident: Vec<_> = l1.resident().collect();
                resident.sort_unstable_by_key(|(l, _, _)| *l);
                repr.push_str(&format!("l1[{slot}]{resident:?};"));
            }
            for (cpu, core) in nd.cpus.cores().enumerate() {
                let (itlb, dtlb) = core.tlb_residency();
                repr.push_str(&format!("tlb[{cpu}]i{itlb:?}d{dtlb:?};"));
            }
            for b in 0..nd.caches.bank_count() {
                let bank = nd.caches.bank(b);
                repr.push_str(&format!("l2[{b}]{:?};", bank.resident_lines()));
                let mut dup: Vec<String> = bank
                    .dup()
                    .iter()
                    .map(|(line, e)| {
                        let holders: Vec<_> = e.holders().map(|s| (s, e.l1_state(s))).collect();
                        format!(
                            "{line}=({holders:?},{:?},{:?},{},{},{},{})",
                            e.owner, e.ext, e.in_l2, e.l2_dirty, e.l2_version, e.node_dirty
                        )
                    })
                    .collect();
                dup.sort_unstable();
                repr.push_str(&format!("dup[{b}]{dup:?};"));
            }
            for (b, bank) in nd.mem.banks().iter().enumerate() {
                repr.push_str(&format!(
                    "mem[{b}]v{:?}d{:?};",
                    bank.written_lines(),
                    bank.directory_lines()
                ));
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Functionally warm the machine until the total retired instruction
    /// count reaches `target` (or every CPU is done): CPUs round-robin
    /// in quantum-sized steps, every miss resolved synchronously through
    /// the real cache/TLB/directory/protocol state machines with zero
    /// latency.
    ///
    /// # Panics
    ///
    /// Panics if a full round over all CPUs makes no progress (a warm
    /// resolution bug — a live CPU's miss must complete synchronously).
    pub(crate) fn warm_until_total(&mut self, target: u64) {
        let Machine {
            cfg, lanes, clock, ..
        } = self;
        let sh = LaneShared::new(cfg, lanes.len());
        let mut q: VecDeque<WarmWork> = VecDeque::new();
        let mut scratch = WarmScratch::default();
        let mut total: u64 = lanes.iter().map(|l| l.instrs_retired).sum();
        'outer: while total < target {
            if lanes.iter().map(|l| l.unfinished).sum::<usize>() == 0 {
                break;
            }
            let mut progressed = false;
            for li in 0..lanes.len() {
                for cpu in 0..lanes[li].node.cpus.len() {
                    {
                        let nd = &lanes[li].node;
                        if nd.cpus.is_done(cpu) || !nd.sc.cpu_enabled(CpuId(cpu as u8)) {
                            continue;
                        }
                    }
                    let (retired, p) = warm_step(lanes, &sh, &mut q, &mut scratch, li, cpu);
                    total += retired;
                    progressed |= p;
                    if total >= target {
                        break 'outer;
                    }
                }
            }
            assert!(
                progressed,
                "functional warming made no progress over a full round"
            );
        }
        for lane in lanes.iter() {
            *clock = (*clock).max(lane.events.now());
        }
    }

    /// Complete every in-flight detailed event (fills, memory reads,
    /// protocol transactions) without retiring further instructions:
    /// CPU `Step` events are set aside and re-queued afterwards, so the
    /// calendar ends up holding nothing but runnable-CPU steps — the
    /// state a functional phase can take over from. Cross-node traffic
    /// generated while draining is merged and routed exactly as at a
    /// quantum barrier.
    pub(crate) fn drain_inflight(&mut self) {
        let Machine {
            cfg,
            lanes,
            net,
            probe,
            net_port,
            lookahead,
            clock,
            ..
        } = self;
        let sh = LaneShared::new(cfg, lanes.len());
        let mut deferred: Vec<Vec<(SimTime, usize)>> = lanes.iter().map(|_| Vec::new()).collect();
        let mut merged: Vec<
            piranha_parsim::Merged<piranha_net::Depart<piranha_protocol::ProtoMsg>>,
        > = Vec::new();
        // Advance in conservative lookahead windows, exactly like the
        // parallel engine's barrier loop: a full per-lane drain would
        // let one lane's clock run past an arrival another lane's
        // traffic is about to schedule on it. Event-horizon windows
        // keep this O(events), not O(span / quantum).
        loop {
            merged.clear();
            for (i, lane) in lanes.iter_mut().enumerate() {
                lane.outbox.drain_into(i, &mut merged);
            }
            if !merged.is_empty() {
                piranha_parsim::sort_merged(&mut merged);
                let mut path = NetPath {
                    cfg,
                    net,
                    port: net_port,
                    probe,
                    lookahead,
                };
                for m in merged.drain(..) {
                    let dest = m.payload.to.index();
                    let (arrive, from, msg) =
                        path.route(&mut lanes[m.source].faults, m.time, m.payload);
                    lanes[dest]
                        .events
                        .schedule(arrive, Ev::NetMsg { from, msg });
                }
            }
            let mut t_min: Option<SimTime> = None;
            for lane in lanes.iter() {
                if let Some(t) = lane.events.peek_time() {
                    t_min = Some(match t_min {
                        Some(m) => m.min(t),
                        None => t,
                    });
                }
            }
            let Some(base) = t_min else { break };
            let horizon = lookahead.horizon(base);
            for lane in lanes.iter_mut() {
                while lane.events.peek_time().is_some_and(|t| t < horizon) {
                    let (t, ev) = lane.events.pop().expect("peeked event");
                    match ev {
                        Ev::Cpu(CpuEvent::Step { cpu }) => deferred[lane.index].push((t, cpu)),
                        other => lane.dispatch(&sh, t, other),
                    }
                }
            }
        }
        for lane in lanes.iter_mut() {
            // Partitions refuse scheduling into their local past, and the
            // drain may have advanced past a step's original time.
            let now = lane.events.now();
            for &(t, cpu) in &deferred[lane.index] {
                lane.events
                    .schedule(t.max(now), Ev::Cpu(CpuEvent::Step { cpu }));
            }
            *clock = (*clock).max(lane.events.now());
        }
    }

    /// Run the workload under SMARTS-style systematic sampling:
    /// functional warming punctuated by detailed measurement windows
    /// (see [`SampleConfig`]), returning a [`RunResult`] whose `cpus`
    /// and `window` cover the measured windows only and whose
    /// [`RunResult::sample`] carries the CPI / stall-fraction estimate
    /// with 95% confidence intervals.
    ///
    /// `budget` bounds the run at `budget` instructions per CPU
    /// (mirroring [`Machine::run`]'s `measure`); `None` runs every
    /// stream to completion (mirroring [`Machine::run_to_completion`] —
    /// once measurement converges the remainder is functionally
    /// fast-forwarded, so bounded workloads still commit all work).
    ///
    /// # Panics
    ///
    /// Panics if fault injection is enabled: functional warming skips
    /// the fault-consult points, which would desynchronize the PRNG
    /// streams between the regimes.
    pub fn run_sampled(&mut self, sample: &SampleConfig, budget: Option<u64>) -> RunResult {
        assert!(
            !self.cfg.faults.enabled(),
            "sampled execution does not support fault injection"
        );
        assert!(
            !self.cfg.traffic.enabled(),
            "sampled execution does not support open-loop traffic \
             (warm fast-forward skips the admission-gate points)"
        );
        let ncpus = self.cfg.total_cpus() as u64;
        let limit = budget.map(|b| self.total_instrs().saturating_add(b.saturating_mul(ncpus)));
        let n_cores = self.cpu_stats().len();
        let mut target = SampledTarget {
            m: self,
            ncpus,
            limit,
            acc: vec![CoreStats::default(); n_cores],
            wall_cycles: 0,
            detailed_cycles: 0,
            warming_cycles: 0,
        };
        let est = SampleDriver::new(sample).run(&mut target);
        let SampledTarget {
            acc,
            wall_cycles,
            detailed_cycles,
            warming_cycles,
            ..
        } = target;
        self.tally.windows += est.windows;
        self.tally.detailed_cycles += detailed_cycles;
        self.tally.warming_cycles += warming_cycles;
        let mut r = RunResult::new(
            self.cfg.name.clone(),
            self.cfg.cpu_clock.cycles_dur(wall_cycles),
            self.cfg.cpu_clock,
            acc,
        );
        r.mem_page_hit_rate = self.mem_page_hit_rate();
        self.finish_result(&mut r);
        r.sample = Some(est);
        r
    }
}

/// The [`SampleTarget`] a `Machine` presents to the sample driver:
/// scales the driver's per-CPU instruction counts to aggregate targets,
/// clamps them to the run's budget, and accumulates the measured-window
/// statistics for the final [`RunResult`].
struct SampledTarget<'a> {
    m: &'a mut Machine,
    ncpus: u64,
    /// Aggregate retired-instruction ceiling (`None` = completion).
    limit: Option<u64>,
    /// Per-CPU statistics summed over the measured windows.
    acc: Vec<CoreStats>,
    /// Sum over windows of the slowest CPU's cycle delta — the sampled
    /// analogue of the measured window's wall-cycle length.
    wall_cycles: u64,
    detailed_cycles: u64,
    warming_cycles: u64,
}

impl SampledTarget<'_> {
    fn clamp(&self, want_per_cpu: u64) -> u64 {
        let t = self
            .m
            .total_instrs()
            .saturating_add(want_per_cpu.saturating_mul(self.ncpus));
        match self.limit {
            Some(l) => t.min(l),
            None => t,
        }
    }
}

impl SampleTarget for SampledTarget<'_> {
    fn functional_warm(&mut self, instrs: u64) -> u64 {
        let start = self.m.total_instrs();
        let target = self.clamp(instrs);
        if target <= start {
            return 0;
        }
        let c0 = self.m.total_core_cycles();
        self.m.warm_until_total(target);
        self.warming_cycles += self.m.total_core_cycles() - c0;
        self.m.total_instrs() - start
    }

    fn detailed_window(&mut self, lead: u64, measure: u64) -> WindowSample {
        let c0 = self.m.total_core_cycles();
        // Unmeasured lead-in: re-establish queue/MLP timing state that
        // functional warming does not model.
        let start = self.m.total_instrs();
        self.m.run_until_total(self.clamp(lead));
        let lead_instrs = self.m.total_instrs() - start;
        // Measured segment, diffed in the core-cycle domain (immune to
        // the stale simulated times of deferred steps).
        let snap = self.m.cpu_stats();
        let cyc0 = self.m.per_cpu_cycles();
        self.m.run_until_total(self.clamp(measure));
        self.m.drain_inflight();
        let end = self.m.cpu_stats();
        let cyc1 = self.m.per_cpu_cycles();
        let mut s = WindowSample {
            lead_instrs,
            ..Default::default()
        };
        let mut wall = 0u64;
        for (i, (e, sn)) in end.iter().zip(&snap).enumerate() {
            let d = e.diff(sn);
            let cd = cyc1[i] - cyc0[i];
            s.instrs += d.instrs;
            s.stall_cycles += d.total_stall();
            s.cycles += cd;
            wall = wall.max(cd);
            self.acc[i].merge(&d);
        }
        self.wall_cycles += wall;
        self.detailed_cycles += self.m.total_core_cycles() - c0;
        s
    }

    fn done(&self) -> bool {
        if let Some(l) = self.limit {
            if self.m.total_instrs() >= l {
                return true;
            }
        }
        self.m.lanes.iter().all(|l| l.unfinished == 0)
    }
}
