//! The event-driven whole-system simulator.

use std::collections::{HashMap, VecDeque};

use piranha_cache::{BankAction, BankEvent, L1Set, L2Bank, Mesi, Slot};
use piranha_cpu::{CoreCtx, CoreModel, CoreStatus, InOrderCore, MemReq, OooCore};
use piranha_faults::{AvailabilityReport, FaultKind, FaultPlane};
use piranha_ics::{Ics, TransferSize};
use piranha_kernel::{EventQueue, Server};
use piranha_mem::{DirEntry, MemBank, Scrub};
use piranha_net::{crc32, flip_bit, Network, Packet, PacketKind, Topology};
use piranha_probe::{Probe, TraceLevel};
use piranha_protocol::coherence::{occupancy_cycles, DirStore};
use piranha_protocol::{
    EngineAction, EngineRecovery, HomeEngine, HomeIn, LineRange, ProtoMsg, RasPolicy, RemoteEngine,
    RemoteIn,
};
use piranha_types::{CpuId, Duration, FillSource, Lane, LineAddr, NodeId, SimTime};
use piranha_workloads::Workload;

use crate::config::{CoreKind, SystemConfig};
use crate::result::RunResult;

/// Lines per OS page (8 KB pages interleave homes across nodes).
const PAGE_LINES: u64 = 128;

/// Chrome-trace track layout: each node owns a stride of 64 track ids —
/// CPUs at `base + cpu`, L2 banks at `base + TRACK_BANK + bank`, memory
/// channels at `base + TRACK_MEM + bank`, then the two protocol engines
/// and the router port.
const TRACK_STRIDE: u32 = 64;
const TRACK_BANK: u32 = 16;
const TRACK_MEM: u32 = 24;
const TRACK_HOME: u32 = 32;
const TRACK_REMOTE: u32 = 33;
const TRACK_NET: u32 = 34;

/// Build the interconnect topology: processing nodes fully connected
/// (gluelessly possible up to five with four channels each) or meshed,
/// with each I/O node attached by its two channels to two processing
/// nodes for redundancy (paper §2.6.1).
fn build_topology(processing: usize, io: usize) -> Topology {
    let total = processing + io;
    if total == 1 {
        // A single node never routes; a trivial two-node ring keeps the
        // network object well-formed (and unused).
        return Topology::ring(2);
    }
    if io == 0 {
        return if total <= 5 {
            Topology::fully_connected(total)
        } else {
            let w = (total as f64).sqrt().ceil() as usize;
            Topology::mesh(w, total.div_ceil(w).max(2))
        };
    }
    // Custom: processing clique + dual-homed I/O nodes.
    let mut adj: Vec<Vec<NodeId>> = (0..total).map(|_| Vec::new()).collect();
    for a in 0..processing {
        for b in (a + 1)..processing {
            adj[a].push(NodeId(b as u16));
            adj[b].push(NodeId(a as u16));
        }
    }
    for i in 0..io {
        let n = processing + i;
        let first = i % processing;
        adj[n].push(NodeId(first as u16));
        adj[first].push(NodeId(n as u16));
        if processing > 1 {
            let second = (i + 1) % processing;
            adj[n].push(NodeId(second as u16));
            adj[second].push(NodeId(n as u16));
        }
    }
    Topology::custom(adj)
}

/// One node (chip) of the machine.
struct Node {
    cores: Vec<Box<dyn CoreModel>>,
    streams: Vec<Box<dyn piranha_cpu::InstrStream>>,
    l1s: L1Set,
    banks: Vec<L2Bank>,
    bank_srv: Vec<Server>,
    mem: Vec<MemBank>,
    ics: Ics,
    home: HomeEngine,
    remote: RemoteEngine,
    home_srv: Server,
    remote_srv: Server,
    sc: crate::sysctl::SystemController,
    done: Vec<bool>,
    /// Per-node RAS policy: persistent-memory journal + mirror log
    /// (paper §2.7).
    ras: RasPolicy,
    /// Protocol-engine watchdog/replay machinery (paper §2.7: engine
    /// hiccups recover by replaying the TSRF transaction).
    engine_rec: EngineRecovery,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("cpus", &self.cores.len())
            .finish_non_exhaustive()
    }
}

/// View of one node's memory banks as the home engine's directory store.
struct NodeDirs<'a> {
    banks: &'a mut [MemBank],
}

impl DirStore for NodeDirs<'_> {
    fn dir(&self, line: LineAddr) -> DirEntry {
        self.banks[(line.0 % self.banks.len() as u64) as usize].directory(line)
    }
    fn set_dir(&mut self, line: LineAddr, dir: DirEntry) {
        let n = self.banks.len() as u64;
        self.banks[(line.0 % n) as usize].set_directory(line, dir);
    }
    fn mem_version(&self, line: LineAddr) -> u64 {
        self.banks[(line.0 % self.banks.len() as u64) as usize].version(line)
    }
}

#[derive(Debug, Clone)]
enum Ev {
    /// Let a CPU execute.
    CpuStep { node: usize, cpu: usize },
    /// Deliver a fill completion to a CPU.
    CpuFill {
        node: usize,
        cpu: usize,
        id: u64,
        source: FillSource,
    },
    /// Deliver an event to an L2 bank.
    Bank {
        node: usize,
        bank: usize,
        ev: BankEvent,
    },
    /// A memory read's critical word is available.
    MemRead {
        node: usize,
        bank: usize,
        line: LineAddr,
    },
    /// A protocol message arrives at a node.
    NetMsg {
        node: usize,
        from: NodeId,
        msg: ProtoMsg,
    },
}

enum Item {
    Bank(BankAction),
    Eng(EngineAction),
}

/// The whole simulated system: nodes, interconnect, event queue.
///
/// # Examples
///
/// ```no_run
/// use piranha_system::{Machine, SystemConfig};
/// use piranha_workloads::{OltpConfig, Workload};
///
/// let mut m = Machine::new(SystemConfig::piranha_p8(), &Workload::Oltp(OltpConfig::paper_default()));
/// let result = m.run(100_000, 400_000);
/// println!("{:.3} instructions/ns", result.throughput_ipns());
/// ```
pub struct Machine {
    cfg: SystemConfig,
    events: EventQueue<Ev>,
    nodes: Vec<Node>,
    net: Network<ProtoMsg>,
    versions: u64,
    /// Outstanding CPU requests: (node, slot, line) → request id.
    outstanding: HashMap<(usize, Slot, LineAddr), u64>,
    /// Observability handle; `Probe::disabled()` (the default) makes
    /// every recording call a no-op. The simulation never reads it, so
    /// attaching a probe cannot change simulated results.
    probe: Probe,
    /// Running total of retired instructions, maintained incrementally so
    /// the run loop does not rescan every core.
    instrs_retired: u64,
    /// CPUs that are enabled and not yet done; `run_until_total` stops
    /// when this hits zero instead of scanning nodes × cores.
    unfinished: usize,
    /// Reusable buffer for `cpu_step`'s memory requests.
    req_buf: Vec<(u64, MemReq)>,
    /// Reusable work queue for `apply`.
    work: VecDeque<(usize, Item)>,
    /// The fault-injection oracle and availability ledger. Disabled by
    /// default: every consult is a branch on a cached bool, zero PRNG
    /// draws, zero latency — a fault-free run is bit-identical to one
    /// built before this field existed.
    faults: FaultPlane,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("config", &self.cfg.name)
            .field("nodes", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Build a machine running `workload` (one stream per CPU).
    pub fn new(cfg: SystemConfig, workload: &Workload) -> Self {
        let total = cfg.workload_cpus();
        let streams: Vec<Box<dyn piranha_cpu::InstrStream>> = (0..total)
            .map(|i| workload.stream_for_cpu(i, total, cfg.seed))
            .collect();
        Self::with_streams(cfg, streams)
    }

    /// Build a machine with explicit per-CPU streams (for examples and
    /// tests driving custom programs, e.g. through `piranha_cpu::IsaStream`).
    ///
    /// # Panics
    ///
    /// Panics if the number of streams does not match the CPU count.
    pub fn with_streams(
        cfg: SystemConfig,
        mut streams: Vec<Box<dyn piranha_cpu::InstrStream>>,
    ) -> Self {
        assert_eq!(
            streams.len(),
            cfg.workload_cpus(),
            "one stream per processing CPU (I/O nodes drive themselves)"
        );
        let total_nodes = cfg.nodes + cfg.io_nodes;
        let topo = build_topology(cfg.nodes, cfg.io_nodes);
        let net = Network::new(topo, cfg.net);
        let mut nodes = Vec::with_capacity(total_nodes);
        for n in 0..total_nodes {
            let is_io = n >= cfg.nodes;
            let (n_cpus, n_banks) = if is_io {
                (1, 1)
            } else {
                (cfg.cpus_per_node, cfg.l2_banks)
            };
            let cores: Vec<Box<dyn CoreModel>> = (0..n_cpus)
                .map(|_| match cfg.core {
                    CoreKind::InOrder(c) => Box::new(InOrderCore::new(c)) as Box<dyn CoreModel>,
                    CoreKind::Ooo(c) => Box::new(OooCore::new(c)) as Box<dyn CoreModel>,
                })
                .collect();
            let node_streams: Vec<Box<dyn piranha_cpu::InstrStream>> = if is_io {
                // The I/O chip's CPU runs device-driver/DMA traffic,
                // fully coherent with the rest of the system.
                vec![Box::new(piranha_workloads::SynthStream::new(
                    piranha_workloads::SynthConfig::dma(),
                    n - cfg.nodes,
                    cfg.io_nodes,
                    cfg.seed ^ 0x10,
                ))]
            } else {
                streams.drain(..cfg.cpus_per_node).collect()
            };
            let mut sc = crate::sysctl::SystemController::new(NodeId(n as u16), n_cpus);
            let peers: Vec<NodeId> = (0..total_nodes)
                .filter(|&m| m != n)
                .map(|m| NodeId(m as u16))
                .collect();
            sc.interconnect_boot(&peers, 1024);
            let mut ras = RasPolicy::new(NodeId(n as u16));
            if cfg.faults.enabled() && cfg.faults.mirror_lines > 0 {
                // Mirror the low lines on every node; `on_home_write`
                // only fires at a line's home, so each node's mirror log
                // covers exactly its own homed slice of the range.
                ras.register_mirrored(LineRange {
                    start: LineAddr(0),
                    end: LineAddr(cfg.faults.mirror_lines),
                });
            }
            nodes.push(Node {
                cores,
                streams: node_streams,
                l1s: L1Set::new(n_cpus, cfg.l1),
                banks: (0..n_banks)
                    .map(|b| L2Bank::new(cfg.l2_bank, b as u64, n_banks as u64))
                    .collect(),
                bank_srv: (0..n_banks).map(|_| Server::new()).collect(),
                mem: (0..n_banks).map(|_| MemBank::new(cfg.mem)).collect(),
                ics: Ics::new(cfg.ics),
                home: {
                    let mut h = HomeEngine::new(NodeId(n as u16), total_nodes);
                    h.set_cmi_routes(cfg.cmi_routes);
                    h
                },
                remote: RemoteEngine::new(NodeId(n as u16)),
                home_srv: Server::new(),
                remote_srv: Server::new(),
                sc,
                done: vec![false; n_cpus],
                ras,
                engine_rec: EngineRecovery::new(cfg.faults.replay_timeout_cycles),
            });
        }
        let mut events = EventQueue::new();
        for (n, node) in nodes.iter().enumerate() {
            for c in 0..node.cores.len() {
                events.schedule(SimTime::ZERO, Ev::CpuStep { node: n, cpu: c });
            }
        }
        let unfinished = nodes.iter().map(|n| n.cores.len()).sum();
        let faults = FaultPlane::new(cfg.faults.clone(), cfg.seed);
        Machine {
            cfg,
            events,
            nodes,
            net,
            versions: 0,
            outstanding: HashMap::new(),
            probe: Probe::disabled(),
            instrs_retired: 0,
            unfinished,
            req_buf: Vec::new(),
            work: VecDeque::new(),
            faults,
        }
    }

    /// The home node of a line (8 KB pages interleaved round-robin).
    fn home_of(&self, line: LineAddr) -> usize {
        ((line.0 / PAGE_LINES) % self.nodes.len() as u64) as usize
    }

    fn bank_of(&self, node: usize, line: LineAddr) -> usize {
        (line.0 % self.nodes[node].banks.len() as u64) as usize
    }

    fn cycle_to_time(&self, cycle: u64) -> SimTime {
        SimTime::ZERO + self.cfg.cpu_clock.cycles_dur(cycle)
    }

    fn time_to_cycle(&self, t: SimTime) -> u64 {
        self.cfg.cpu_clock.cycles(t.since(SimTime::ZERO))
    }

    /// Reply latency from bank to CPU by service point.
    fn reply_latency(&self, source: FillSource) -> Duration {
        match source {
            FillSource::L2Fwd => self.cfg.lat.reply + self.cfg.lat.fwd_probe,
            _ => self.cfg.lat.reply,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    fn track_base(node: usize) -> u32 {
        node as u32 * TRACK_STRIDE
    }

    /// Attach an observability probe; names this machine's tracks for
    /// the Chrome-trace exporter. Pass [`Probe::disabled`] to detach.
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
        if !self.probe.is_enabled() {
            return;
        }
        for (n, node) in self.nodes.iter().enumerate() {
            let base = Self::track_base(n);
            for c in 0..node.cores.len() {
                self.probe
                    .name_track(base + c as u32, format!("node{n}.cpu{c}"));
            }
            for b in 0..node.banks.len() {
                self.probe
                    .name_track(base + TRACK_BANK + b as u32, format!("node{n}.l2bank{b}"));
                self.probe
                    .name_track(base + TRACK_MEM + b as u32, format!("node{n}.mem{b}"));
            }
            self.probe
                .name_track(base + TRACK_HOME, format!("node{n}.home-engine"));
            self.probe
                .name_track(base + TRACK_REMOTE, format!("node{n}.remote-engine"));
            self.probe
                .name_track(base + TRACK_NET, format!("node{n}.router"));
        }
    }

    /// The attached probe (disabled unless [`Machine::set_probe`] was
    /// called).
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// Pull-sample every subsystem's authoritative counters into the
    /// probe's metric registry. The subsystems keep the single source of
    /// truth; the registry holds the latest sampled reading. A no-op
    /// when the probe is disabled.
    pub fn sample_metrics(&self) {
        if !self.probe.is_enabled() {
            return;
        }
        let p = &self.probe;
        p.publish_counter("kernel.events.scheduled", self.events.scheduled());
        p.publish_counter("kernel.events.popped", self.events.popped());
        p.publish_counter("kernel.events.migrated", self.events.migrated());
        p.publish_counter("machine.instrs", self.total_instrs());
        p.publish_gauge("mem.page_hit_rate", self.mem_page_hit_rate());
        p.publish_counter("net.delivered", self.net.delivered());
        p.publish_counter("net.deflections", self.net.deflections());
        p.publish_counter("net.retransmits", self.net.retransmits());
        p.publish_gauge("net.mean_hops", self.net.mean_hops());
        let av = self.faults.report();
        p.publish_counter("faults.injected", av.injected);
        p.publish_counter("faults.corrected", av.corrected);
        p.publish_counter("faults.escalated", av.escalated);
        p.publish_counter("faults.retransmits", av.retransmits);
        p.publish_counter("faults.recovery_cycles", av.recovery_cycles);
        for (n, node) in self.nodes.iter().enumerate() {
            for (c, core) in node.cores.iter().enumerate() {
                let s = core.stats();
                let k = format!("cpu.node{n}.core{c}");
                p.publish_counter(&format!("{k}.instrs"), s.instrs);
                p.publish_counter(&format!("{k}.l1_hits"), s.l1_hits);
                p.publish_counter(&format!("{k}.l1i_misses"), s.l1i_misses);
                p.publish_counter(&format!("{k}.l1d_misses"), s.l1d_misses);
                p.publish_counter(&format!("{k}.sb_reqs"), s.sb_reqs);
                p.publish_counter(&format!("{k}.tlb_misses"), core.tlb_misses());
                p.publish_counter(&format!("{k}.stall_cycles"), s.total_stall());
            }
            p.publish_counter(
                &format!("cache.node{n}.bank_lookups"),
                node.bank_srv.iter().map(|s| s.jobs()).sum(),
            );
            p.publish_counter(&format!("ics.node{n}.words"), node.ics.words_moved());
            p.publish_gauge(
                &format!("ics.node{n}.utilization"),
                node.ics.utilization(self.events.now()),
            );
            p.publish_counter(
                &format!("mem.node{n}.accesses"),
                node.mem.iter().map(|m| m.rdram().accesses()).sum(),
            );
            p.publish_counter(
                &format!("protocol.node{n}.home_msgs"),
                node.home.msgs_handled(),
            );
            p.publish_counter(
                &format!("protocol.node{n}.remote_msgs"),
                node.remote.msgs_handled(),
            );
            p.publish_counter(
                &format!("protocol.node{n}.replays"),
                node.engine_rec.replays(),
            );
            p.publish_counter(&format!("ras.node{n}.cap_faults"), node.ras.faults());
            p.publish_gauge(
                &format!("protocol.node{n}.tsrf_high_water"),
                node.home
                    .tsrf_high_water()
                    .max(node.remote.tsrf_high_water()) as f64,
            );
        }
    }

    /// Per-CPU statistics snapshots (cloned), node-major order.
    pub fn cpu_stats(&self) -> Vec<piranha_cpu::CoreStats> {
        self.nodes
            .iter()
            .flat_map(|n| n.cores.iter().map(|c| c.stats().clone()))
            .collect()
    }

    /// Total instructions retired so far across all CPUs.
    pub fn total_instrs(&self) -> u64 {
        self.nodes
            .iter()
            .flat_map(|n| n.cores.iter())
            .map(|c| c.stats().instrs)
            .sum()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// The interconnect (for delivery/deflection statistics).
    pub fn network(&self) -> &Network<ProtoMsg> {
        &self.net
    }

    /// Mean RDRAM open-page hit rate across all memory banks.
    pub fn mem_page_hit_rate(&self) -> f64 {
        let mut hits = 0.0;
        let mut n = 0.0;
        for node in &self.nodes {
            for m in &node.mem {
                let a = m.rdram().accesses() as f64;
                hits += m.rdram().page_hit_rate() * a;
                n += a;
            }
        }
        if n == 0.0 {
            0.0
        } else {
            hits / n
        }
    }

    /// Protocol-engine statistics: (home msgs, remote msgs, home TSRF
    /// high-water, remote TSRF high-water) summed/maxed over nodes.
    pub fn engine_stats(&self) -> (u64, u64, usize, usize) {
        let mut hm = 0;
        let mut rm = 0;
        let mut hw = 0;
        let mut rw = 0;
        for n in &self.nodes {
            hm += n.home.msgs_handled();
            rm += n.remote.msgs_handled();
            hw = hw.max(n.home.tsrf_high_water());
            rw = rw.max(n.remote.tsrf_high_water());
        }
        (hm, rm, hw, rw)
    }

    /// Run until every CPU has retired at least `warmup` instructions'
    /// share, reset measurement, then run for `measure` more instructions
    /// per CPU (aggregate); returns the measured-window statistics.
    pub fn run(&mut self, warmup: u64, measure: u64) -> RunResult {
        let ncpus = self.cfg.total_cpus() as u64;
        self.run_until_total(self.total_instrs() + warmup * ncpus);
        let snap: Vec<piranha_cpu::CoreStats> = self.cpu_stats();
        let t0 = self.now();
        self.run_until_total(self.total_instrs() + measure * ncpus);
        let t1 = self.now();
        let end = self.cpu_stats();
        let cpus: Vec<piranha_cpu::CoreStats> =
            end.iter().zip(&snap).map(|(e, s)| e.diff(s)).collect();
        let mut r = RunResult::new(
            self.cfg.name.clone(),
            t1.since(t0),
            self.cfg.cpu_clock,
            cpus,
        );
        r.mem_page_hit_rate = self.mem_page_hit_rate();
        self.finish_result(&mut r);
        r
    }

    /// Run until every CPU's stream ends. Only meaningful for bounded
    /// workloads (`txn_limit`/`line_limit` set): a fault-free and a
    /// faulted run then complete the *same* work, so the committed count
    /// must match exactly while only the cycle count differs — the basis
    /// of the availability slowdown measurement.
    pub fn run_to_completion(&mut self) -> RunResult {
        let t0 = self.now();
        let snap = self.cpu_stats();
        self.run_until_total(u64::MAX);
        let t1 = self.now();
        let end = self.cpu_stats();
        let cpus: Vec<piranha_cpu::CoreStats> =
            end.iter().zip(&snap).map(|(e, s)| e.diff(s)).collect();
        let mut r = RunResult::new(
            self.cfg.name.clone(),
            t1.since(t0),
            self.cfg.cpu_clock,
            cpus,
        );
        r.mem_page_hit_rate = self.mem_page_hit_rate();
        self.finish_result(&mut r);
        r
    }

    /// Attach the availability ledger and committed-work count to a
    /// result, audit RAS mirror consistency, and snapshot metrics (the
    /// metrics stay outside the fingerprint; availability and committed
    /// work are folded in).
    fn finish_result(&mut self, r: &mut RunResult) {
        r.availability = self.faults.report().clone();
        assert!(
            r.availability.is_consistent(),
            "availability ledger violated corrected + escalated == injected"
        );
        r.committed_txns = self.committed_txns();
        self.check_ras();
        self.sample_metrics();
        r.metrics = self.probe.metrics().unwrap_or_default();
    }

    /// Total workload-level units of work (transactions, scan lines)
    /// committed across all streams that track one; `None` when no
    /// stream does (fixed-instruction-window runs).
    pub fn committed_txns(&self) -> Option<u64> {
        let mut total = 0u64;
        let mut any = false;
        for node in &self.nodes {
            for s in &node.streams {
                if let Some(c) = s.txns_committed() {
                    total += c;
                    any = true;
                }
            }
        }
        any.then_some(total)
    }

    /// The availability ledger accumulated so far.
    pub fn availability(&self) -> &AvailabilityReport {
        self.faults.report()
    }

    /// The fault-injection plane (configuration, unfired script events).
    pub fn fault_plane(&self) -> &FaultPlane {
        &self.faults
    }

    /// The RAS policy of `node` (persistence journal, mirror log,
    /// capability faults).
    pub fn ras(&self, node: usize) -> &RasPolicy {
        &self.nodes[node].ras
    }

    /// Register `range` as persistent on `node`, returning the write
    /// capability (paper §2.7: capability-guarded persistent memory).
    pub fn ras_register_persistent(
        &mut self,
        node: usize,
        range: LineRange,
    ) -> piranha_protocol::Capability {
        self.nodes[node].ras.register_persistent(range)
    }

    /// Register `range` as mirrored on `node`: subsequent home-memory
    /// writes of its lines are duplicated into the mirror log.
    pub fn ras_register_mirrored(&mut self, node: usize, range: LineRange) {
        self.nodes[node].ras.register_mirrored(range);
    }

    /// Execute a persistent-memory barrier on `node` for `range`: every
    /// cached line of the range homed at `node` that is dirty relative
    /// to the journal is forced home (memory write + journal + mirror) —
    /// the paper's commit-without-disk-round-trip (§2.7). Returns how
    /// many lines were forced.
    pub fn ras_persist_barrier(&mut self, node: usize, range: LineRange) -> usize {
        let mut cached: Vec<(LineAddr, u64)> = Vec::new();
        for nd in &self.nodes {
            for (_slot, l1) in nd.l1s.iter() {
                for (line, _state, v) in l1.resident() {
                    if range.contains(line) && self.home_of(line) == node {
                        cached.push((line, v));
                    }
                }
            }
        }
        let dirty = self.nodes[node]
            .ras
            .persist_barrier(range, cached.into_iter());
        let t = self.events.now();
        for &(line, v) in &dirty {
            let bank = self.bank_of(node, line);
            let nd = &mut self.nodes[node];
            nd.mem[bank].write(t, line, v);
            nd.ras.on_home_write(line, v);
        }
        dirty.len()
    }

    /// Audit RAS consistency: every mirror-log entry must match the
    /// current home-memory version of its line. Runs at the end of every
    /// `run`/`run_to_completion`; a violation means a home write dodged
    /// the mirroring hooks.
    ///
    /// # Panics
    ///
    /// Panics naming the first divergent line.
    pub fn check_ras(&self) {
        for (n, node) in self.nodes.iter().enumerate() {
            for (line, v) in node.ras.mirror_entries() {
                let mem_v = node.mem[(line.0 % node.mem.len() as u64) as usize].version(line);
                assert_eq!(
                    v, mem_v,
                    "mirror log diverges from memory for {line} on node {n}"
                );
            }
        }
    }

    /// Run until the total retired instruction count reaches `target` (or
    /// every CPU is done).
    ///
    /// The hot loop is pure event dispatch: both the instruction total
    /// and the all-CPUs-done condition are tracked incrementally
    /// (`instrs_retired`, `unfinished`) rather than rescanned from the
    /// per-core statistics every iteration.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains while CPUs are unfinished or the
    /// event budget is exhausted — both indicate a protocol deadlock bug.
    pub fn run_until_total(&mut self, target: u64) {
        debug_assert_eq!(self.instrs_retired, self.total_instrs());
        while self.instrs_retired < target {
            if self.unfinished == 0 {
                return;
            }
            for _ in 0..64 {
                let Some((t, ev)) = self.events.pop() else {
                    assert!(
                        self.unfinished == 0,
                        "event queue drained with unfinished CPUs: deadlock"
                    );
                    return;
                };
                assert!(
                    self.events.popped() < 2_000_000_000,
                    "event budget exhausted: runaway simulation"
                );
                self.dispatch(t, ev);
            }
        }
    }

    fn dispatch(&mut self, t: SimTime, ev: Ev) {
        match ev {
            Ev::CpuStep { node, cpu } => self.cpu_step(t, node, cpu),
            Ev::CpuFill {
                node,
                cpu,
                id,
                source,
            } => {
                self.probe.instant(
                    TraceLevel::Verbose,
                    "cpu",
                    "fill",
                    Self::track_base(node) + cpu as u32,
                    t.as_ps(),
                    id,
                );
                let cyc = self.time_to_cycle(t);
                let core = &mut self.nodes[node].cores[cpu];
                let before = core.stats().instrs;
                core.fill(id, cyc, source);
                let after = core.stats().instrs;
                self.instrs_retired += after - before;
                self.events.schedule(t, Ev::CpuStep { node, cpu });
            }
            Ev::Bank { node, bank, ev } => {
                self.probe.span(
                    TraceLevel::Spans,
                    "cache",
                    "bank.lookup",
                    Self::track_base(node) + TRACK_BANK + bank as u32,
                    t.as_ps(),
                    self.cfg.lat.bank.as_ps(),
                    0,
                );
                let nd = &mut self.nodes[node];
                let acts = nd.banks[bank].handle(ev, &mut nd.l1s);
                self.apply(t, node, acts.into_iter().map(Item::Bank).collect());
            }
            Ev::MemRead { node, bank, line } => {
                self.probe.instant(
                    TraceLevel::Spans,
                    "mem",
                    "dram.read",
                    Self::track_base(node) + TRACK_MEM + bank as u32,
                    t.as_ps(),
                    line.0,
                );
                // Read the version/directory *now* (at data-return time),
                // so intervening writes are observed.
                let nd = &mut self.nodes[node];
                let version = nd.mem[bank].version(line);
                let remote = nd.mem[bank].directory(line).summary();
                let acts = nd.banks[bank].handle(
                    BankEvent::MemData {
                        line,
                        version,
                        remote,
                    },
                    &mut nd.l1s,
                );
                self.apply(t, node, acts.into_iter().map(Item::Bank).collect());
            }
            Ev::NetMsg { node, from, msg } => {
                let line = msg.line();
                let kind = match &msg {
                    ProtoMsg::Req { .. } => "req",
                    ProtoMsg::Reply { .. } => "reply",
                    ProtoMsg::Fwd { .. } => "fwd",
                    ProtoMsg::Inval { .. } => "inval",
                    ProtoMsg::InvalAck { .. } | ProtoMsg::WbAck { .. } => "ack",
                    _ => "wb",
                };
                let is_home = self.home_of(line) == node;
                let mut pe_cycles = occupancy_cycles(kind);
                if self.faults.enabled() {
                    let cyc = self.time_to_cycle(t);
                    if let Some(h) = self.faults.engine_hiccup(cyc) {
                        // The engine's watchdog expires and the handler
                        // replays from its TSRF-recorded inputs: extra
                        // occupancy, same architectural outcome (the
                        // state machine only commits at completion).
                        let extra = self.nodes[node].engine_rec.replay(kind);
                        pe_cycles += extra;
                        self.faults.note_recovery(h.kind, true, extra, 0);
                        self.probe.instant(
                            TraceLevel::Spans,
                            "faults",
                            "engine.replay",
                            Self::track_base(node)
                                + if is_home { TRACK_HOME } else { TRACK_REMOTE },
                            t.as_ps(),
                            extra,
                        );
                    }
                }
                let occ = self.cfg.lat.pe_instr.times(pe_cycles);
                self.probe.span(
                    TraceLevel::Spans,
                    "protocol",
                    if is_home { "home" } else { "remote" },
                    Self::track_base(node) + if is_home { TRACK_HOME } else { TRACK_REMOTE },
                    t.as_ps(),
                    occ.as_ps(),
                    line.0,
                );
                let items: Vec<Item> = if is_home {
                    let nd = &mut self.nodes[node];
                    nd.home_srv.acquire(t, occ);
                    let (banks, home) = (&mut nd.mem, &mut nd.home);
                    let mut dirs = NodeDirs { banks };
                    home.handle(HomeIn::Msg { from, msg }, &mut dirs)
                        .into_iter()
                        .map(Item::Eng)
                        .collect()
                } else {
                    let nd = &mut self.nodes[node];
                    nd.remote_srv.acquire(t, occ);
                    nd.remote
                        .handle(RemoteIn::Msg { from, msg })
                        .into_iter()
                        .map(Item::Eng)
                        .collect()
                };
                self.apply(t, node, items);
            }
        }
    }

    fn cpu_step(&mut self, t: SimTime, node: usize, cpu: usize) {
        let quantum = self.cfg.cpu_quantum;
        let mut reqs = std::mem::take(&mut self.req_buf);
        debug_assert!(reqs.is_empty());
        let status = {
            let nd = &mut self.nodes[node];
            if nd.done[cpu] || !nd.sc.cpu_enabled(CpuId(cpu as u8)) {
                self.req_buf = reqs;
                return;
            }
            let (l1i, l1d) = nd.l1s.pair_mut(CpuId(cpu as u8));
            let mut ctx = CoreCtx {
                l1i,
                l1d,
                versions: &mut self.versions,
            };
            let before = nd.cores[cpu].stats().instrs;
            let cyc_before = nd.cores[cpu].now_cycle();
            let status =
                nd.cores[cpu].advance(nd.streams[cpu].as_mut(), &mut ctx, quantum, &mut reqs);
            let retired = nd.cores[cpu].stats().instrs - before;
            self.instrs_retired += retired;
            let cyc_after = nd.cores[cpu].now_cycle();
            if cyc_after > cyc_before {
                self.probe.span(
                    TraceLevel::Spans,
                    "cpu",
                    "step",
                    Self::track_base(node) + cpu as u32,
                    t.as_ps(),
                    self.cfg
                        .cpu_clock
                        .cycles_dur(cyc_after - cyc_before)
                        .as_ps(),
                    retired,
                );
            }
            status
        };
        for (cycle, req) in reqs.drain(..) {
            let issue = self.cycle_to_time(cycle).max(t);
            // Request message over the ICS (header) + path latency.
            let tics = self.nodes[node]
                .ics
                .transfer(issue, TransferSize::Header, Lane::Low);
            let arrive = (issue + self.cfg.lat.req).max(tics);
            let bank = self.bank_of(node, req.line);
            let exec = self.nodes[node].bank_srv[bank].acquire(arrive, self.cfg.lat.bank);
            let slot = Slot::new(CpuId(cpu as u8), req.kind);
            let prev = self.outstanding.insert((node, slot, req.line), req.id);
            assert!(
                prev.is_none(),
                "duplicate outstanding request for {slot} {}",
                req.line
            );
            let home_local = self.home_of(req.line) == node;
            self.events.schedule(
                exec.max(t),
                Ev::Bank {
                    node,
                    bank,
                    ev: BankEvent::Miss {
                        slot,
                        req: req.req,
                        line: req.line,
                        home_local,
                        store_version: req.store_version,
                    },
                },
            );
        }
        self.req_buf = reqs;
        match status {
            CoreStatus::Runnable => {
                let next = self
                    .cycle_to_time(self.nodes[node].cores[cpu].now_cycle())
                    .max(t);
                self.events.schedule(next, Ev::CpuStep { node, cpu });
            }
            CoreStatus::Blocked => {}
            CoreStatus::Done => {
                self.nodes[node].done[cpu] = true;
                self.unfinished -= 1;
            }
        }
    }

    /// Apply a work-list of bank/engine actions at time `t` on `node`.
    /// The work queue's allocation is reused across dispatches.
    fn apply(&mut self, t: SimTime, origin: usize, items: Vec<Item>) {
        let mut q = std::mem::take(&mut self.work);
        debug_assert!(q.is_empty());
        q.extend(items.into_iter().map(|i| (origin, i)));
        while let Some((n, item)) = q.pop_front() {
            match item {
                Item::Bank(a) => self.apply_bank_action(t, n, a, &mut q),
                Item::Eng(a) => self.apply_engine_action(t, n, a, &mut q),
            }
        }
        self.work = q;
    }

    fn apply_bank_action(
        &mut self,
        t: SimTime,
        n: usize,
        a: BankAction,
        q: &mut VecDeque<(usize, Item)>,
    ) {
        match a {
            BankAction::Grant {
                slot,
                line,
                state: _,
                version: _,
                source,
                upgraded,
            } => {
                let id = self
                    .outstanding
                    .remove(&(n, slot, line))
                    .unwrap_or_else(|| panic!("grant without outstanding request: {slot} {line}"));
                // Data fills occupy an ICS datapath; upgrades are
                // header-only.
                let size = if upgraded {
                    TransferSize::Header
                } else {
                    TransferSize::Line
                };
                self.nodes[n].ics.transfer(t, size, Lane::High);
                let wake = t + self.reply_latency(source);
                self.events.schedule(
                    wake,
                    Ev::CpuFill {
                        node: n,
                        cpu: slot.cpu().index(),
                        id,
                        source,
                    },
                );
            }
            BankAction::Inval { .. } | BankAction::Downgrade { .. } => {
                self.nodes[n]
                    .ics
                    .transfer(t, TransferSize::Header, Lane::High);
            }
            BankAction::VictimDisplaced {
                slot,
                line,
                state,
                version,
            } => {
                // Victim data crosses the ICS to its own bank.
                let size = if state == Mesi::Modified {
                    TransferSize::Line
                } else {
                    TransferSize::Header
                };
                self.nodes[n].ics.transfer(t, size, Lane::Low);
                let bank = self.bank_of(n, line);
                let nd = &mut self.nodes[n];
                let acts = nd.banks[bank].handle(
                    BankEvent::Victim {
                        slot,
                        line,
                        state,
                        version,
                    },
                    &mut nd.l1s,
                );
                q.extend(acts.into_iter().map(|x| (n, Item::Bank(x))));
            }
            BankAction::ReadMem { line } => {
                let bank = self.bank_of(n, line);
                let acc = self.nodes[n].mem[bank].access(t, line);
                let mut ready = (acc.critical + self.cfg.lat.mc_overhead).max(t);
                if self.faults.enabled() {
                    let cyc = self.time_to_cycle(t);
                    if let Some(f) = self.faults.mem_fault(cyc) {
                        ready += self.scrub_line(t, n, bank, line, f);
                    }
                }
                self.events.schedule(
                    ready,
                    Ev::MemRead {
                        node: n,
                        bank,
                        line,
                    },
                );
            }
            BankAction::WriteMem { line, version } => {
                let bank = self.bank_of(n, line);
                let nd = &mut self.nodes[n];
                nd.mem[bank].write(t, line, version);
                nd.ras.on_home_write(line, version);
            }
            BankAction::RemoteReq { slot: _, line, req } => {
                let home = NodeId(self.home_of(line) as u16);
                let acts = self.nodes[n]
                    .remote
                    .handle(RemoteIn::LocalReq { line, req, home });
                q.extend(acts.into_iter().map(|x| (n, Item::Eng(x))));
            }
            BankAction::RemoteWb { line, version } => {
                let home = NodeId(self.home_of(line) as u16);
                let acts = self.nodes[n].remote.handle(RemoteIn::LocalWb {
                    line,
                    version,
                    home,
                });
                q.extend(acts.into_iter().map(|x| (n, Item::Eng(x))));
            }
            BankAction::HomeInvalRemote { line } => {
                let nd = &mut self.nodes[n];
                let (banks, home) = (&mut nd.mem, &mut nd.home);
                let mut dirs = NodeDirs { banks };
                let acts = home.handle(HomeIn::LocalInvalRemotes { line }, &mut dirs);
                q.extend(acts.into_iter().map(|x| (n, Item::Eng(x))));
            }
            BankAction::HomeRecall { slot: _, line, req } => {
                let nd = &mut self.nodes[n];
                let (banks, home) = (&mut nd.mem, &mut nd.home);
                let mut dirs = NodeDirs { banks };
                let acts = home.handle(HomeIn::LocalRecall { line, req }, &mut dirs);
                q.extend(acts.into_iter().map(|x| (n, Item::Eng(x))));
            }
            BankAction::ExportReply {
                line,
                version,
                dirty,
                cached,
            } => {
                let items: Vec<Item> = if self.home_of(line) == n {
                    let nd = &mut self.nodes[n];
                    let (banks, home) = (&mut nd.mem, &mut nd.home);
                    let mut dirs = NodeDirs { banks };
                    home.handle(
                        HomeIn::ExportReply {
                            line,
                            version,
                            dirty,
                            cached,
                        },
                        &mut dirs,
                    )
                    .into_iter()
                    .map(Item::Eng)
                    .collect()
                } else {
                    self.nodes[n]
                        .remote
                        .handle(RemoteIn::ExportReply {
                            line,
                            version,
                            dirty,
                            cached,
                        })
                        .into_iter()
                        .map(Item::Eng)
                        .collect()
                };
                q.extend(items.into_iter().map(|x| (n, x)));
            }
        }
    }

    fn apply_engine_action(
        &mut self,
        t: SimTime,
        n: usize,
        a: EngineAction,
        q: &mut VecDeque<(usize, Item)>,
    ) {
        match a {
            EngineAction::Send { to, msg } => {
                let kind = if msg.is_long() {
                    PacketKind::Long
                } else {
                    PacketKind::Short
                };
                let lane = msg.lane();
                let pkt = Packet::new(NodeId(n as u16), to, lane, kind, msg);
                let (first, pkt) = self.net.send(t, pkt);
                self.probe.span(
                    TraceLevel::Spans,
                    "net",
                    "send",
                    Self::track_base(n) + TRACK_NET,
                    t.as_ps(),
                    first.max(t).since(t).as_ps(),
                    pkt.payload.line().0,
                );
                let mut arrive = first.max(t);
                let mut payload = pkt.payload;
                if self.faults.enabled() {
                    let cyc = self.time_to_cycle(t);
                    if let Some(f) = self.faults.packet_fault(cyc) {
                        payload = self.retransmit(t, n, to, lane, kind, payload, f, &mut arrive);
                    }
                    if let Some(stall) = self.faults.router_stall(cyc) {
                        // A transient queue stall: the hop completes late
                        // but nothing is lost.
                        arrive += self.cfg.cpu_clock.cycles_dur(stall);
                        self.faults
                            .note_recovery(FaultKind::RouterStall, true, stall, 0);
                        self.probe.instant(
                            TraceLevel::Spans,
                            "faults",
                            "router.stall",
                            Self::track_base(n) + TRACK_NET,
                            t.as_ps(),
                            stall,
                        );
                    }
                }
                self.events.schedule(
                    arrive,
                    Ev::NetMsg {
                        node: to.index(),
                        from: NodeId(n as u16),
                        msg: payload,
                    },
                );
            }
            EngineAction::Export { line, excl } => {
                let bank = self.bank_of(n, line);
                let nd = &mut self.nodes[n];
                let acts = nd.banks[bank].handle(BankEvent::Export { line, excl }, &mut nd.l1s);
                q.extend(acts.into_iter().map(|x| (n, Item::Bank(x))));
            }
            EngineAction::Fill {
                line,
                excl,
                version,
                source,
            } => {
                let bank = self.bank_of(n, line);
                let grant = if excl { Mesi::Exclusive } else { Mesi::Shared };
                let nd = &mut self.nodes[n];
                let acts = nd.banks[bank].handle(
                    BankEvent::RemoteFill {
                        line,
                        grant,
                        version,
                        source,
                    },
                    &mut nd.l1s,
                );
                q.extend(acts.into_iter().map(|x| (n, Item::Bank(x))));
            }
            EngineAction::Purge { line } => {
                let bank = self.bank_of(n, line);
                let nd = &mut self.nodes[n];
                let acts = nd.banks[bank].handle(BankEvent::InvalAll { line }, &mut nd.l1s);
                q.extend(acts.into_iter().map(|x| (n, Item::Bank(x))));
            }
            EngineAction::MemWrite { line, version } => {
                let bank = self.bank_of(n, line);
                let nd = &mut self.nodes[n];
                nd.mem[bank].write(t, line, version);
                nd.ras.on_home_write(line, version);
            }
        }
    }

    /// Drive link-level recovery of one faulted packet send (paper
    /// §2.6.1/§2.7: CRC-protected links). Each failed attempt costs a
    /// NACK plus exponentially backed-off delay before the retransmit
    /// re-walks the network; the packet that finally lands is clean.
    /// Escalation (budget blown) still delivers — the NAK-free protocol
    /// cannot tolerate a silently dropped message — but is charged to
    /// the availability ledger as escalated.
    #[allow(clippy::too_many_arguments)]
    fn retransmit(
        &mut self,
        t: SimTime,
        n: usize,
        to: NodeId,
        lane: Lane,
        kind: PacketKind,
        mut payload: ProtoMsg,
        f: piranha_faults::PacketFault,
        arrive: &mut SimTime,
    ) -> ProtoMsg {
        let first_cycle = self.time_to_cycle(t);
        let attempts = f.failed_attempts.min(self.faults.cfg().retry_budget + 1);
        if f.kind == FaultKind::PacketCorrupt {
            // Genuine detection, not assumption: corrupt the encoded
            // payload and check the link CRC actually flags it.
            let wire = format!("{payload:?}").into_bytes();
            let good = crc32(&wire);
            for attempt in 1..=attempts {
                let mut damaged = wire.clone();
                flip_bit(&mut damaged, f.flip_bit.wrapping_add(attempt));
                debug_assert_ne!(
                    crc32(&damaged),
                    good,
                    "link CRC must detect a single-bit flip"
                );
            }
        }
        for attempt in 1..=attempts {
            let delay = self.faults.cfg().retransmit_delay_cycles(attempt);
            let at = *arrive + self.cfg.cpu_clock.cycles_dur(delay);
            let (t2, p2) = self
                .net
                .resend(at, Packet::new(NodeId(n as u16), to, lane, kind, payload));
            *arrive = t2.max(at);
            payload = p2.payload;
        }
        let corrected = f.failed_attempts <= self.faults.cfg().retry_budget;
        let mttr = self.time_to_cycle(*arrive).saturating_sub(first_cycle);
        self.faults
            .note_recovery(f.kind, corrected, mttr, attempts as u64);
        self.probe.instant(
            TraceLevel::Spans,
            "faults",
            "packet.retransmit",
            Self::track_base(n) + TRACK_NET,
            t.as_ps(),
            attempts as u64,
        );
        payload
    }

    /// Apply an injected memory bit-flip and run the SEC-DED scrub
    /// (paper §2.7: memory protected by ECC, mirroring for what ECC
    /// cannot fix). Single-bit errors correct in place; double-bit
    /// errors escalate to a mirror-log restore when one exists. Returns
    /// the repair latency to add to the read's data-return time.
    fn scrub_line(
        &mut self,
        t: SimTime,
        n: usize,
        bank: usize,
        line: LineAddr,
        f: piranha_faults::MemFault,
    ) -> Duration {
        let double = f.kind == FaultKind::MemFlipDouble;
        let bits: &[u32] = if double {
            &[f.bit_a, f.bit_b]
        } else {
            &[f.bit_a]
        };
        let outcome = self.nodes[n].mem[bank].inject_and_scrub(line, bits);
        let (corrected, penalty) = match outcome {
            Scrub::Clean(_) | Scrub::Corrected(_) => (true, self.faults.cfg().scrub_cycles),
            Scrub::Uncorrectable => {
                // SEC-DED gives up; restore from the mirror when one
                // exists. Either way the fault escalated past the
                // first-line ECC defence.
                let nd = &mut self.nodes[n];
                if let Some(v) = nd.ras.mirror_copy(line) {
                    nd.mem[bank].set_version(line, v);
                }
                (false, self.faults.cfg().failover_cycles)
            }
        };
        self.faults.note_recovery(f.kind, corrected, penalty, 0);
        self.probe.instant(
            TraceLevel::Spans,
            "faults",
            "mem.scrub",
            Self::track_base(n) + TRACK_MEM + bank as u32,
            t.as_ps(),
            line.0,
        );
        self.cfg.cpu_clock.cycles_dur(penalty)
    }

    /// Snapshot a machine-wide utilization report (the system
    /// controller's performance-monitoring role, §2).
    pub fn report(&self) -> crate::report::MachineReport {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                let mem_accesses: u64 = n.mem.iter().map(|m| m.rdram().accesses()).sum();
                let hits: f64 = n
                    .mem
                    .iter()
                    .map(|m| m.rdram().page_hit_rate() * m.rdram().accesses() as f64)
                    .sum();
                crate::report::NodeReport {
                    ics_words: n.ics.words_moved(),
                    ics_utilization: n.ics.utilization(self.events.now()),
                    bank_lookups: n.bank_srv.iter().map(|s| s.jobs()).sum(),
                    mem_accesses,
                    mem_page_hit_rate: if mem_accesses == 0 {
                        0.0
                    } else {
                        hits / mem_accesses as f64
                    },
                    home_msgs: n.home.msgs_handled(),
                    remote_msgs: n.remote.msgs_handled(),
                    home_instrs: n.home.instr_executed(),
                    remote_instrs: n.remote.instr_executed(),
                    tsrf_high_water: (n.home.tsrf_high_water(), n.remote.tsrf_high_water()),
                    sc_packets: n.sc.packets_handled(),
                }
            })
            .collect();
        crate::report::MachineReport {
            now: self.events.now(),
            nodes,
            net_delivered: self.net.delivered(),
            net_deflections: self.net.deflections(),
            net_mean_hops: self.net.mean_hops(),
            instrs: self.total_instrs(),
        }
    }

    /// Stop a CPU through the node's system controller (paper §2.6: the
    /// SC can start/stop individual Alpha cores). In-flight transactions
    /// complete; the core simply stops being scheduled.
    pub fn stop_cpu(&mut self, node: usize, cpu: usize) {
        let nd = &mut self.nodes[node];
        let was_running = nd.sc.cpu_enabled(CpuId(cpu as u8)) && !nd.done[cpu];
        nd.sc.handle(crate::sysctl::CtrlPacket::StopCpu {
            cpu: CpuId(cpu as u8),
        });
        if was_running && !nd.sc.cpu_enabled(CpuId(cpu as u8)) {
            self.unfinished -= 1;
        }
    }

    /// Restart a stopped CPU; it resumes its stream where it left off.
    pub fn start_cpu(&mut self, node: usize, cpu: usize) {
        let nd = &mut self.nodes[node];
        let was_stopped = !nd.sc.cpu_enabled(CpuId(cpu as u8));
        nd.sc.handle(crate::sysctl::CtrlPacket::StartCpu {
            cpu: CpuId(cpu as u8),
        });
        if was_stopped && nd.sc.cpu_enabled(CpuId(cpu as u8)) && !nd.done[cpu] {
            self.unfinished += 1;
        }
        let t = self.events.now();
        self.events.schedule(t, Ev::CpuStep { node, cpu });
    }

    /// The system controller of `node` (configuration, interrupts,
    /// performance monitoring).
    pub fn system_controller(&self, node: usize) -> &crate::sysctl::SystemController {
        &self.nodes[node].sc
    }

    /// Verify system-wide coherence invariants; used by integration and
    /// property tests. Checks that (1) at most one cache in the whole
    /// system holds a line in a writable state (the single-writer
    /// invariant); (2) *within* a chip, a writable copy excludes every
    /// other local copy — exact because the intra-chip switch applies
    /// coherence atomically; (3) every L1-resident line is tracked by its
    /// bank's duplicate tags.
    ///
    /// A *remote* stale Shared copy may transiently coexist with a new
    /// owner's Modified copy: the paper's eager exclusive replies grant
    /// ownership before the cruise-missile invalidations land (§2.5.3),
    /// so that window is legal and not flagged.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_coherence(&self) {
        use std::collections::HashMap as Map;
        let mut writable: Map<LineAddr, (usize, Slot)> = Map::new();
        let mut per_node: Map<(usize, LineAddr), (u32, u32)> = Map::new(); // (copies, writable)
        for (n, node) in self.nodes.iter().enumerate() {
            for (slot, l1) in node.l1s.iter() {
                for (line, state, _v) in l1.resident() {
                    let e = per_node.entry((n, line)).or_insert((0, 0));
                    e.0 += 1;
                    if state.writable() {
                        e.1 += 1;
                        if let Some((on, os)) = writable.insert(line, (n, slot)) {
                            panic!(
                                "two writable copies of {line}: node{on}/{os} and node{n}/{slot}"
                            );
                        }
                    }
                    let bank = &node.banks[self.bank_of(n, line)];
                    let d = bank
                        .dup()
                        .get(line)
                        .unwrap_or_else(|| panic!("L1 line {line} missing from dup tags"));
                    assert!(
                        d.l1_state(slot).readable(),
                        "dup tags disagree with L1 for {line} at {slot}"
                    );
                }
            }
        }
        for ((n, line), (copies, writables)) in &per_node {
            if *writables > 0 {
                assert_eq!(
                    *copies, 1,
                    "writable line {line} coexists with other copies on node {n}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piranha_workloads::{SynthConfig, Workload};

    #[test]
    fn single_cpu_synthetic_smoke() {
        let mut cfg = SystemConfig::piranha_p1();
        cfg.cpu_quantum = 500;
        let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::light()));
        let r = m.run(2_000, 20_000);
        assert!(r.total_instrs() >= 20_000);
        assert!(r.throughput_ipns() > 0.0);
        m.check_coherence();
    }

    #[test]
    fn eight_cpu_sharing_smoke() {
        let mut cfg = SystemConfig::piranha_p8();
        cfg.cpu_quantum = 500;
        let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
        let r = m.run(2_000, 10_000);
        assert!(r.total_instrs() >= 80_000);
        let (hit, fwd, miss) = r.l1_miss_breakdown();
        assert!(hit + fwd + miss > 0.99);
        m.check_coherence();
    }

    #[test]
    fn ooo_smoke() {
        let mut cfg = SystemConfig::ooo();
        cfg.cpu_quantum = 500;
        let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::light()));
        let r = m.run(2_000, 20_000);
        assert!(r.total_instrs() >= 20_000);
    }

    #[test]
    fn two_chip_coherence_smoke() {
        let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
        cfg.cpu_quantum = 500;
        let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
        let r = m.run(1_000, 5_000);
        assert!(r.total_instrs() >= 20_000);
        let merged = r.merged();
        assert!(
            merged.fills[3] + merged.fills[4] > 0,
            "multi-chip run must see remote fills"
        );
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut cfg = SystemConfig::piranha_pn(2);
            cfg.cpu_quantum = 500;
            let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
            let r = m.run(1_000, 5_000);
            (r.total_instrs(), r.window, m.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn faulted_run_recovers_and_stays_deterministic() {
        let run = || {
            let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
            cfg.cpu_quantum = 500;
            cfg.faults = piranha_faults::FaultConfig::seeded(42, 2e-3);
            let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
            let r = m.run(1_000, 5_000);
            assert!(r.availability.is_consistent());
            m.check_coherence();
            (r.fingerprint(), r.availability.injected)
        };
        let (fp_a, inj_a) = run();
        let (fp_b, inj_b) = run();
        assert!(inj_a > 0, "rate 2e-3 over a multichip run must inject");
        assert_eq!((fp_a, inj_a), (fp_b, inj_b), "same seed, same run");
    }

    #[test]
    fn zero_rate_fault_config_is_bit_identical_to_disabled() {
        let run = |faults: piranha_faults::FaultConfig| {
            let mut cfg = SystemConfig::piranha_pn(2);
            cfg.cpu_quantum = 500;
            cfg.faults = faults;
            let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
            m.run(1_000, 5_000).fingerprint()
        };
        let off = run(piranha_faults::FaultConfig::default());
        let zero = run(piranha_faults::FaultConfig {
            seed: 99,
            ..piranha_faults::FaultConfig::default()
        });
        assert_eq!(off, zero, "a zero-rate plane draws nothing, costs nothing");
    }

    #[test]
    fn scripted_faults_fire_and_are_ledgered() {
        let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
        cfg.cpu_quantum = 500;
        cfg.faults = piranha_faults::FaultConfig::scripted(
            "corrupt@50, flap@60, stall@80, hiccup@100, flip1@200, flip2@300",
        )
        .unwrap();
        let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
        let r = m.run(1_000, 5_000);
        assert_eq!(r.availability.injected, 6, "all six scripted events fired");
        assert!(r.availability.is_consistent());
        assert_eq!(m.fault_plane().unfired_scripted(), 0);
        assert!(
            r.availability.escalated >= 1,
            "the double-bit flip escalates past ECC"
        );
        assert!(r.availability.retransmits >= 2, "corrupt + flap retransmit");
    }
}

#[cfg(test)]
mod io_tests {
    use super::*;
    use crate::config::SystemConfig;
    use piranha_workloads::{SynthConfig, Workload};

    /// An I/O node participates fully in global coherence: its DMA
    /// traffic reaches memory homed on processing nodes and vice versa.
    #[test]
    fn io_node_is_a_coherence_citizen() {
        let cfg = SystemConfig::piranha_pn(2).with_io_nodes(1);
        let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
        m.run_until_total(120_000);
        m.check_coherence();
        // The I/O node's CPU (last in node-major order) made progress.
        let stats = m.cpu_stats();
        let io_cpu = stats.last().unwrap();
        assert!(io_cpu.instrs > 1_000, "I/O CPU ran its driver stream");
        let remote: u64 = io_cpu.fills[3] + io_cpu.fills[4];
        assert!(remote > 0, "I/O traffic crossed the interconnect");
    }

    /// Dual-homed I/O links: the custom topology keeps every node
    /// reachable and within the channel budget.
    #[test]
    fn io_topology_shape() {
        let t = build_topology(4, 2);
        assert_eq!(t.nodes(), 6);
        assert!(
            t.max_degree() <= 5,
            "processing degree 3 + up to 2 io links"
        );
        assert_eq!(
            t.neighbours(NodeId(4)).len(),
            2,
            "io nodes have two channels"
        );
    }

    /// The system controller can stop and restart cores mid-run.
    #[test]
    fn sc_stops_and_restarts_cores() {
        let cfg = SystemConfig::piranha_pn(2);
        let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::light()));
        m.run_until_total(20_000);
        m.stop_cpu(0, 1);
        let before = m.cpu_stats()[1].instrs;
        m.run_until_total(m.total_instrs() + 20_000);
        let after = m.cpu_stats()[1].instrs;
        assert!(
            after - before < 4_000,
            "stopped CPU must not keep executing: {before} -> {after}"
        );
        m.start_cpu(0, 1);
        m.run_until_total(m.total_instrs() + 20_000);
        assert!(m.cpu_stats()[1].instrs > after, "restarted CPU resumes");
        assert!(m.system_controller(0).packets_handled() > 0);
    }
}
