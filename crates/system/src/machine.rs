//! The event-driven whole-system simulator: run loop and system API.
//!
//! The [`Machine`] is three thin layers over the component adapters the
//! subsystem crates export:
//!
//! * `node` — per-chip composition (CPU cluster, cache complex,
//!   memory array, engine complex, ICS, system controller, RAS);
//! * `dispatch` — event routing between adapters, with fault
//!   injection and probe spans applied at the port boundary;
//! * `wiring` — construction, topology, and observability plumbing.
//!
//! This module keeps only the run loop, the per-node scheduler, and the
//! externally visible system API (RAS operations, hot CPU start/stop,
//! coherence audit).

use std::collections::{HashMap, VecDeque};

use piranha_cache::{BankAction, Slot};
use piranha_cpu::CpuAction;
use piranha_faults::{AvailabilityReport, FaultPlane};
use piranha_kernel::{Port, Scheduler};
use piranha_mem::MemData;
use piranha_net::{Arrive, Fabric};
use piranha_probe::Probe;
use piranha_protocol::{EngineAction, LineRange, ProtoMsg, RasPolicy};
use piranha_types::{CpuId, Duration, FillSource, LineAddr, SimTime};
use piranha_workloads::Workload;

use crate::config::SystemConfig;
use crate::dispatch::{Ev, Item};
use crate::node::Node;
use crate::result::RunResult;

/// Lines per OS page (8 KB pages interleave homes across nodes).
pub(crate) const PAGE_LINES: u64 = 128;

/// The whole simulated system: nodes, interconnect, event scheduler.
///
/// # Examples
///
/// ```no_run
/// use piranha_system::{Machine, SystemConfig};
/// use piranha_workloads::{OltpConfig, Workload};
///
/// let mut m = Machine::new(SystemConfig::piranha_p8(), &Workload::Oltp(OltpConfig::paper_default()));
/// let result = m.run(100_000, 400_000);
/// println!("{:.3} instructions/ns", result.throughput_ipns());
/// ```
pub struct Machine {
    pub(crate) cfg: SystemConfig,
    /// Per-node event sub-queues with a deterministic global merge.
    pub(crate) events: Scheduler<Ev>,
    pub(crate) nodes: Vec<Node>,
    /// The machine-wide interconnect fabric.
    pub(crate) net: Fabric<ProtoMsg>,
    pub(crate) versions: u64,
    /// Outstanding CPU requests: (node, slot, line) → request id.
    pub(crate) outstanding: HashMap<(usize, Slot, LineAddr), u64>,
    /// Observability handle; `Probe::disabled()` (the default) makes
    /// every recording call a no-op. The simulation never reads it, so
    /// attaching a probe cannot change simulated results.
    pub(crate) probe: Probe,
    /// Running total of retired instructions, maintained incrementally so
    /// the run loop does not rescan every core.
    pub(crate) instrs_retired: u64,
    /// CPUs that are enabled and not yet done; `run_until_total` stops
    /// when this hits zero instead of scanning nodes × cores.
    pub(crate) unfinished: usize,
    /// Reusable work queue for `apply`.
    pub(crate) work: VecDeque<(usize, Item)>,
    /// Reusable output ports, one per action type, drained by dispatch.
    pub(crate) cpu_port: Port<CpuAction>,
    pub(crate) bank_port: Port<BankAction>,
    pub(crate) mem_port: Port<MemData>,
    pub(crate) eng_port: Port<EngineAction>,
    pub(crate) net_port: Port<Arrive<ProtoMsg>>,
    /// The fault-injection oracle and availability ledger. Disabled by
    /// default: every consult is a branch on a cached bool, zero PRNG
    /// draws, zero latency — a fault-free run is bit-identical to one
    /// built before this field existed.
    pub(crate) faults: FaultPlane,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("config", &self.cfg.name)
            .field("nodes", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Build a machine running `workload` (one stream per CPU).
    pub fn new(cfg: SystemConfig, workload: &Workload) -> Self {
        let total = cfg.workload_cpus();
        let streams: Vec<Box<dyn piranha_cpu::InstrStream>> = (0..total)
            .map(|i| workload.stream_for_cpu(i, total, cfg.seed))
            .collect();
        Self::with_streams(cfg, streams)
    }

    /// The home node of a line (8 KB pages interleaved round-robin).
    pub(crate) fn home_of(&self, line: LineAddr) -> usize {
        ((line.0 / PAGE_LINES) % self.nodes.len() as u64) as usize
    }

    pub(crate) fn bank_of(&self, node: usize, line: LineAddr) -> usize {
        (line.0 % self.nodes[node].caches.bank_count() as u64) as usize
    }

    pub(crate) fn cycle_to_time(&self, cycle: u64) -> SimTime {
        SimTime::ZERO + self.cfg.cpu_clock.cycles_dur(cycle)
    }

    pub(crate) fn time_to_cycle(&self, t: SimTime) -> u64 {
        self.cfg.cpu_clock.cycles(t.since(SimTime::ZERO))
    }

    /// Reply latency from bank to CPU by service point.
    pub(crate) fn reply_latency(&self, source: FillSource) -> Duration {
        match source {
            FillSource::L2Fwd => self.cfg.lat.reply + self.cfg.lat.fwd_probe,
            _ => self.cfg.lat.reply,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The attached probe (disabled unless [`Machine::set_probe`] was
    /// called).
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// Per-CPU statistics snapshots (cloned), node-major order.
    pub fn cpu_stats(&self) -> Vec<piranha_cpu::CoreStats> {
        self.nodes
            .iter()
            .flat_map(|n| n.cpus.cores().map(|c| c.stats().clone()))
            .collect()
    }

    /// Total instructions retired so far across all CPUs.
    pub fn total_instrs(&self) -> u64 {
        self.nodes.iter().map(|n| n.cpus.instrs()).sum()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// The interconnect fabric (for delivery/deflection statistics).
    pub fn network(&self) -> &Fabric<ProtoMsg> {
        &self.net
    }

    /// Mean RDRAM open-page hit rate across all memory banks.
    pub fn mem_page_hit_rate(&self) -> f64 {
        let mut hits = 0.0;
        let mut n = 0.0;
        for node in &self.nodes {
            for m in node.mem.banks() {
                let a = m.rdram().accesses() as f64;
                hits += m.rdram().page_hit_rate() * a;
                n += a;
            }
        }
        if n == 0.0 {
            0.0
        } else {
            hits / n
        }
    }

    /// Protocol-engine statistics: (home msgs, remote msgs, home TSRF
    /// high-water, remote TSRF high-water) summed/maxed over nodes.
    pub fn engine_stats(&self) -> (u64, u64, usize, usize) {
        let mut hm = 0;
        let mut rm = 0;
        let mut hw = 0;
        let mut rw = 0;
        for n in &self.nodes {
            hm += n.engines.home().msgs_handled();
            rm += n.engines.remote().msgs_handled();
            hw = hw.max(n.engines.home().tsrf_high_water());
            rw = rw.max(n.engines.remote().tsrf_high_water());
        }
        (hm, rm, hw, rw)
    }

    /// Run until every CPU has retired at least `warmup` instructions'
    /// share, reset measurement, then run for `measure` more instructions
    /// per CPU (aggregate); returns the measured-window statistics.
    pub fn run(&mut self, warmup: u64, measure: u64) -> RunResult {
        let ncpus = self.cfg.total_cpus() as u64;
        self.run_until_total(self.total_instrs() + warmup * ncpus);
        self.run_window(measure * ncpus)
    }

    /// Run until every CPU's stream ends. Only meaningful for bounded
    /// workloads (`txn_limit`/`line_limit` set): a fault-free and a
    /// faulted run then complete the *same* work, so the committed count
    /// must match exactly while only the cycle count differs — the basis
    /// of the availability slowdown measurement.
    pub fn run_to_completion(&mut self) -> RunResult {
        self.run_window(u64::MAX)
    }

    /// The shared measurement driver: snapshot, run for `budget` more
    /// aggregate instructions (saturating, so `u64::MAX` means "until
    /// every stream ends"), and package the measured window.
    fn run_window(&mut self, budget: u64) -> RunResult {
        let snap: Vec<piranha_cpu::CoreStats> = self.cpu_stats();
        let t0 = self.now();
        self.run_until_total(self.total_instrs().saturating_add(budget));
        let t1 = self.now();
        let end = self.cpu_stats();
        let cpus: Vec<piranha_cpu::CoreStats> =
            end.iter().zip(&snap).map(|(e, s)| e.diff(s)).collect();
        let mut r = RunResult::new(
            self.cfg.name.clone(),
            t1.since(t0),
            self.cfg.cpu_clock,
            cpus,
        );
        r.mem_page_hit_rate = self.mem_page_hit_rate();
        self.finish_result(&mut r);
        r
    }

    /// Attach the availability ledger and committed-work count to a
    /// result, audit RAS mirror consistency, and snapshot metrics (the
    /// metrics stay outside the fingerprint; availability and committed
    /// work are folded in).
    fn finish_result(&mut self, r: &mut RunResult) {
        r.availability = self.faults.report().clone();
        assert!(
            r.availability.is_consistent(),
            "availability ledger violated corrected + escalated == injected"
        );
        r.committed_txns = self.committed_txns();
        self.check_ras();
        self.sample_metrics();
        r.metrics = self.probe.metrics().unwrap_or_default();
    }

    /// Total workload-level units of work (transactions, scan lines)
    /// committed across all streams that track one; `None` when no
    /// stream does (fixed-instruction-window runs).
    pub fn committed_txns(&self) -> Option<u64> {
        let mut total = 0u64;
        let mut any = false;
        for node in &self.nodes {
            for s in node.cpus.streams() {
                if let Some(c) = s.txns_committed() {
                    total += c;
                    any = true;
                }
            }
        }
        any.then_some(total)
    }

    /// The availability ledger accumulated so far.
    pub fn availability(&self) -> &AvailabilityReport {
        self.faults.report()
    }

    /// The fault-injection plane (configuration, unfired script events).
    pub fn fault_plane(&self) -> &FaultPlane {
        &self.faults
    }

    /// The RAS policy of `node` (persistence journal, mirror log,
    /// capability faults).
    pub fn ras(&self, node: usize) -> &RasPolicy {
        &self.nodes[node].ras
    }

    /// Register `range` as persistent on `node`, returning the write
    /// capability (paper §2.7: capability-guarded persistent memory).
    pub fn ras_register_persistent(
        &mut self,
        node: usize,
        range: LineRange,
    ) -> piranha_protocol::Capability {
        self.nodes[node].ras.register_persistent(range)
    }

    /// Register `range` as mirrored on `node`: subsequent home-memory
    /// writes of its lines are duplicated into the mirror log.
    pub fn ras_register_mirrored(&mut self, node: usize, range: LineRange) {
        self.nodes[node].ras.register_mirrored(range);
    }

    /// Execute a persistent-memory barrier on `node` for `range`: every
    /// cached line of the range homed at `node` that is dirty relative
    /// to the journal is forced home (memory write + journal + mirror) —
    /// the paper's commit-without-disk-round-trip (§2.7). Returns how
    /// many lines were forced.
    pub fn ras_persist_barrier(&mut self, node: usize, range: LineRange) -> usize {
        let mut cached: Vec<(LineAddr, u64)> = Vec::new();
        for nd in &self.nodes {
            for (_slot, l1) in nd.caches.l1s().iter() {
                for (line, _state, v) in l1.resident() {
                    if range.contains(line) && self.home_of(line) == node {
                        cached.push((line, v));
                    }
                }
            }
        }
        let dirty = self.nodes[node]
            .ras
            .persist_barrier(range, cached.into_iter());
        let t = self.events.now();
        for &(line, v) in &dirty {
            let bank = self.bank_of(node, line);
            let nd = &mut self.nodes[node];
            nd.mem.write(bank, t, line, v);
            nd.ras.on_home_write(line, v);
        }
        dirty.len()
    }

    /// Audit RAS consistency: every mirror-log entry must match the
    /// current home-memory version of its line. Runs at the end of every
    /// `run`/`run_to_completion`; a violation means a home write dodged
    /// the mirroring hooks.
    ///
    /// # Panics
    ///
    /// Panics naming the first divergent line.
    pub fn check_ras(&self) {
        for (n, node) in self.nodes.iter().enumerate() {
            for (line, v) in node.ras.mirror_entries() {
                let bank = (line.0 % node.mem.bank_count() as u64) as usize;
                let mem_v = node.mem.version(bank, line);
                assert_eq!(
                    v, mem_v,
                    "mirror log diverges from memory for {line} on node {n}"
                );
            }
        }
    }

    /// Run until the total retired instruction count reaches `target` (or
    /// every CPU is done).
    ///
    /// The hot loop is pure event dispatch: both the instruction total
    /// and the all-CPUs-done condition are tracked incrementally
    /// (`instrs_retired`, `unfinished`) rather than rescanned from the
    /// per-core statistics every iteration.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains while CPUs are unfinished or the
    /// event budget is exhausted — both indicate a protocol deadlock bug.
    pub fn run_until_total(&mut self, target: u64) {
        debug_assert_eq!(self.instrs_retired, self.total_instrs());
        while self.instrs_retired < target {
            if self.unfinished == 0 {
                return;
            }
            for _ in 0..64 {
                let Some((t, node, ev)) = self.events.pop() else {
                    assert!(
                        self.unfinished == 0,
                        "event queue drained with unfinished CPUs: deadlock"
                    );
                    return;
                };
                assert!(
                    self.events.popped() < 2_000_000_000,
                    "event budget exhausted: runaway simulation"
                );
                self.dispatch(t, node, ev);
            }
        }
    }

    /// Stop a CPU through the node's system controller (paper §2.6: the
    /// SC can start/stop individual Alpha cores). In-flight transactions
    /// complete; the core simply stops being scheduled.
    pub fn stop_cpu(&mut self, node: usize, cpu: usize) {
        let nd = &mut self.nodes[node];
        let was_running = nd.sc.cpu_enabled(CpuId(cpu as u8)) && !nd.cpus.is_done(cpu);
        nd.sc.handle(crate::sysctl::CtrlPacket::StopCpu {
            cpu: CpuId(cpu as u8),
        });
        if was_running && !nd.sc.cpu_enabled(CpuId(cpu as u8)) {
            self.unfinished -= 1;
        }
    }

    /// Restart a stopped CPU; it resumes its stream where it left off.
    pub fn start_cpu(&mut self, node: usize, cpu: usize) {
        let nd = &mut self.nodes[node];
        let was_stopped = !nd.sc.cpu_enabled(CpuId(cpu as u8));
        nd.sc.handle(crate::sysctl::CtrlPacket::StartCpu {
            cpu: CpuId(cpu as u8),
        });
        if was_stopped && nd.sc.cpu_enabled(CpuId(cpu as u8)) && !nd.cpus.is_done(cpu) {
            self.unfinished += 1;
        }
        let t = self.events.now();
        self.events
            .schedule(node, t, Ev::Cpu(piranha_cpu::CpuEvent::Step { cpu }));
    }

    /// The system controller of `node` (configuration, interrupts,
    /// performance monitoring).
    pub fn system_controller(&self, node: usize) -> &crate::sysctl::SystemController {
        &self.nodes[node].sc
    }

    /// Verify system-wide coherence invariants; used by integration and
    /// property tests. Checks that (1) at most one cache in the whole
    /// system holds a line in a writable state (the single-writer
    /// invariant); (2) *within* a chip, a writable copy excludes every
    /// other local copy — exact because the intra-chip switch applies
    /// coherence atomically; (3) every L1-resident line is tracked by its
    /// bank's duplicate tags.
    ///
    /// A *remote* stale Shared copy may transiently coexist with a new
    /// owner's Modified copy: the paper's eager exclusive replies grant
    /// ownership before the cruise-missile invalidations land (§2.5.3),
    /// so that window is legal and not flagged.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_coherence(&self) {
        use std::collections::HashMap as Map;
        let mut writable: Map<LineAddr, (usize, Slot)> = Map::new();
        let mut per_node: Map<(usize, LineAddr), (u32, u32)> = Map::new(); // (copies, writable)
        for (n, node) in self.nodes.iter().enumerate() {
            for (slot, l1) in node.caches.l1s().iter() {
                for (line, state, _v) in l1.resident() {
                    let e = per_node.entry((n, line)).or_insert((0, 0));
                    e.0 += 1;
                    if state.writable() {
                        e.1 += 1;
                        if let Some((on, os)) = writable.insert(line, (n, slot)) {
                            panic!(
                                "two writable copies of {line}: node{on}/{os} and node{n}/{slot}"
                            );
                        }
                    }
                    let d = node
                        .caches
                        .dup(self.bank_of(n, line))
                        .get(line)
                        .unwrap_or_else(|| panic!("L1 line {line} missing from dup tags"));
                    assert!(
                        d.l1_state(slot).readable(),
                        "dup tags disagree with L1 for {line} at {slot}"
                    );
                }
            }
        }
        for ((n, line), (copies, writables)) in &per_node {
            if *writables > 0 {
                assert_eq!(
                    *copies, 1,
                    "writable line {line} coexists with other copies on node {n}"
                );
            }
        }
    }
}
