//! The event-driven whole-system simulator: run loop and system API.
//!
//! The [`Machine`] is three thin layers over the component adapters the
//! subsystem crates export:
//!
//! * `node` — per-chip composition (CPU cluster, cache complex,
//!   memory array, engine complex, ICS, system controller, RAS),
//!   wrapped per chip in a `NodeLane` that carries everything the
//!   dispatch layer needs to advance that chip independently;
//! * `dispatch` — event routing between adapters, with fault
//!   injection and probe spans applied at the port boundary;
//! * `wiring` — construction, topology, and observability plumbing.
//!
//! This module keeps only the run loops and the externally visible
//! system API (RAS operations, hot CPU start/stop, coherence audit).
//!
//! # Execution engines
//!
//! A single-chip machine runs the classic serial loop: pop, dispatch,
//! repeat. A multi-chip machine runs the conservative parallel-in-space
//! engine from `piranha-parsim` regardless of the worker count: each
//! chip's lane advances independently through one *window* — the span
//! `[t_min, t_min + quantum)`, where `quantum` is the machine's
//! [`Lookahead`] bound (the fabric's minimum cross-node delivery
//! latency) and `t_min` the earliest pending event anywhere — and the
//! lanes' buffered cross-node sends are merged at the window barrier in
//! deterministic `(time, source, seq)` order and routed through the
//! shared fabric. Basing every window on the global minimum *pending*
//! time means an idle stretch (all chips waiting on a distant event)
//! costs one window, not `gap / quantum` of them. Windows ride the
//! parsim crate's *train* protocol: lock-free gate handoffs per window,
//! a real barrier rendezvous only every [`piranha_parsim::TRAIN_WINDOWS`]
//! windows (the [`ParsimStats::rounds`] count).
//!
//! Because the worker threads only change *which thread* advances a
//! lane — never the order of events within a lane or the merge order at
//! barriers — results are bit-identical for every worker count,
//! including 1. Pick the worker count with
//! [`Machine::set_parallel_workers`] or run with [`Machine::run_parallel`].

use piranha_cache::Slot;
use piranha_faults::{AvailabilityReport, FaultPlane};
use piranha_kernel::{Lookahead, Port};
use piranha_net::{Arrive, Fabric};
use piranha_probe::Probe;
use piranha_protocol::{LineRange, ProtoMsg, RasPolicy};
use piranha_types::{CpuId, Duration, LineAddr, SimTime};
use piranha_workloads::Workload;

use crate::config::SystemConfig;
use crate::dispatch::{Ev, LaneShared, NetPath};
use crate::node::NodeLane;
use crate::result::RunResult;

/// Lines per OS page (8 KB pages interleave homes across nodes).
pub(crate) const PAGE_LINES: u64 = 128;

/// Cumulative parallel-engine execution counters (multi-chip machines
/// only; a single-chip machine's serial loop leaves them at zero except
/// [`ParsimStats::events`]). Deterministic: every field is a function of
/// the simulation, never of the worker count or thread schedule, so the
/// counters are safe to assert on in tests and benches.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ParsimStats {
    /// Barrier rendezvous executed (one per
    /// [`piranha_parsim::TRAIN_WINDOWS`] windows) — the engine's real
    /// synchronization count.
    pub rounds: u64,
    /// Logical lookahead windows executed.
    pub windows: u64,
    /// Barrier passes that found no cross-node traffic to merge.
    pub empty_windows: u64,
    /// Cross-node events merged and routed at barriers.
    pub merged_events: u64,
    /// Total events popped across all lanes (the work the windows
    /// carried; `merged_events / windows` is the cross-node fraction).
    pub events: u64,
}

/// The whole simulated system: node lanes, interconnect, lookahead.
///
/// # Examples
///
/// ```no_run
/// use piranha_system::{Machine, SystemConfig};
/// use piranha_workloads::{OltpConfig, Workload};
///
/// let mut m = Machine::new(SystemConfig::piranha_p8(), &Workload::Oltp(OltpConfig::paper_default()));
/// let result = m.run(100_000, 400_000);
/// println!("{:.3} instructions/ns", result.throughput_ipns());
/// ```
pub struct Machine {
    pub(crate) cfg: SystemConfig,
    /// One lane per chip: the node plus its event partition, outbox,
    /// fault plane, and dispatch scratch state.
    pub(crate) lanes: Vec<NodeLane>,
    /// The machine-wide interconnect fabric (touched only at barriers).
    pub(crate) net: Fabric<ProtoMsg>,
    /// Observability handle; `Probe::disabled()` (the default) makes
    /// every recording call a no-op. The simulation never reads it, so
    /// attaching a probe cannot change simulated results.
    pub(crate) probe: Probe,
    /// Reusable port for fabric arrivals at barrier-time routing.
    pub(crate) net_port: Port<Arrive<ProtoMsg>>,
    /// The per-pair lookahead matrix, derived at wiring time from the
    /// fabric's topology distances; its global minimum (asserted
    /// strictly positive) is the window quantum, the per-pair bounds
    /// back the delivery assertions.
    pub(crate) lookahead: Lookahead,
    /// Cumulative parallel-engine counters (see [`ParsimStats`]).
    pub(crate) parsim: ParsimStats,
    /// Cumulative sampled-execution counters (see
    /// [`SampleTally`](crate::warm::SampleTally)); all-zero unless
    /// [`Machine::run_sampled`] ran.
    pub(crate) tally: crate::warm::SampleTally,
    /// Worker threads for the multi-chip engine (1 = in-line, still
    /// quantum-stepped). Not part of `SystemConfig`: the thread count
    /// must never affect results, cache keys, or fingerprints.
    pub(crate) workers: usize,
    /// Global simulated time: the furthest any lane has advanced.
    pub(crate) clock: SimTime,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("config", &self.cfg.name)
            .field("nodes", &self.lanes.len())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Build a machine running `workload` (one stream per CPU).
    pub fn new(cfg: SystemConfig, workload: &Workload) -> Self {
        let total = cfg.workload_cpus();
        let streams: Vec<Box<dyn piranha_cpu::InstrStream>> = (0..total)
            .map(|i| workload.stream_for_cpu(i, total, cfg.seed))
            .collect();
        Self::with_streams(cfg, streams)
    }

    /// The home node of a line (8 KB pages interleaved round-robin).
    pub(crate) fn home_of(&self, line: LineAddr) -> usize {
        ((line.0 / PAGE_LINES) % self.lanes.len() as u64) as usize
    }

    pub(crate) fn bank_of(&self, node: usize, line: LineAddr) -> usize {
        (line.0 % self.lanes[node].node.caches.bank_count() as u64) as usize
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The attached probe (disabled unless [`Machine::set_probe`] was
    /// called).
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// Per-CPU statistics snapshots (cloned), node-major order.
    pub fn cpu_stats(&self) -> Vec<piranha_cpu::CoreStats> {
        self.lanes
            .iter()
            .flat_map(|l| l.node.cpus.cores().map(|c| c.stats().clone()))
            .collect()
    }

    /// Total instructions retired so far across all CPUs.
    pub fn total_instrs(&self) -> u64 {
        self.lanes.iter().map(|l| l.node.cpus.instrs()).sum()
    }

    /// Current simulated time: how far the furthest lane has advanced.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The interconnect fabric (for delivery/deflection statistics).
    pub fn network(&self) -> &Fabric<ProtoMsg> {
        &self.net
    }

    /// A snapshot of the fabric's congestion counters: drops, PFC
    /// pauses, per-link wire time, per-node deflections (the
    /// `fig_scale` sweep's raw material).
    pub fn fabric_stats(&self) -> piranha_net::FabricStats {
        self.net.stats()
    }

    /// The conservative lookahead the multi-chip engine steps by: the
    /// fabric's minimum cross-node delivery latency (the minimum of the
    /// per-pair bound matrix, see [`Machine::lookahead`]).
    pub fn quantum(&self) -> Duration {
        self.lookahead.quantum()
    }

    /// The per-node-pair lookahead matrix computed at wiring time from
    /// the fabric topology: `bound(s, d)` = hop distance × minimum
    /// per-hop latency, the floor on any `s → d` delivery.
    pub fn lookahead(&self) -> &Lookahead {
        &self.lookahead
    }

    /// Cumulative parallel-engine counters: rounds, windows, merged
    /// cross-node events (see [`ParsimStats`]). Identical for every
    /// worker count.
    pub fn parsim_stats(&self) -> ParsimStats {
        self.parsim
    }

    /// Set the worker-thread count for multi-chip runs (clamped to
    /// `[1, nodes]` at run time; single-chip machines always run the
    /// serial loop). The count changes wall-clock only — results are
    /// bit-identical for every value, which is why it lives here and
    /// not in [`SystemConfig`].
    pub fn set_parallel_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The configured worker-thread count.
    pub fn parallel_workers(&self) -> usize {
        self.workers
    }

    /// Mean RDRAM open-page hit rate across all memory banks.
    pub fn mem_page_hit_rate(&self) -> f64 {
        let mut hits = 0.0;
        let mut n = 0.0;
        for lane in &self.lanes {
            for m in lane.node.mem.banks() {
                let a = m.rdram().accesses() as f64;
                hits += m.rdram().page_hit_rate() * a;
                n += a;
            }
        }
        if n == 0.0 {
            0.0
        } else {
            hits / n
        }
    }

    /// Protocol-engine statistics: (home msgs, remote msgs, home TSRF
    /// high-water, remote TSRF high-water) summed/maxed over nodes.
    pub fn engine_stats(&self) -> (u64, u64, usize, usize) {
        let mut hm = 0;
        let mut rm = 0;
        let mut hw = 0;
        let mut rw = 0;
        for l in &self.lanes {
            hm += l.node.engines.home().msgs_handled();
            rm += l.node.engines.remote().msgs_handled();
            hw = hw.max(l.node.engines.home().tsrf_high_water());
            rw = rw.max(l.node.engines.remote().tsrf_high_water());
        }
        (hm, rm, hw, rw)
    }

    /// Run until every CPU has retired at least `warmup` instructions'
    /// share, reset measurement, then run for `measure` more instructions
    /// per CPU (aggregate); returns the measured-window statistics.
    pub fn run(&mut self, warmup: u64, measure: u64) -> RunResult {
        let ncpus = self.cfg.total_cpus() as u64;
        self.run_until_total(self.total_instrs() + warmup * ncpus);
        self.run_window(measure * ncpus)
    }

    /// [`Machine::run`] with `workers` lane threads (multi-chip only;
    /// a single-chip machine runs serially regardless). Bit-identical
    /// to `run` at any worker count.
    pub fn run_parallel(&mut self, warmup: u64, measure: u64, workers: usize) -> RunResult {
        self.set_parallel_workers(workers);
        self.run(warmup, measure)
    }

    /// Run until every CPU's stream ends. Only meaningful for bounded
    /// workloads (`txn_limit`/`line_limit` set): a fault-free and a
    /// faulted run then complete the *same* work, so the committed count
    /// must match exactly while only the cycle count differs — the basis
    /// of the availability slowdown measurement.
    pub fn run_to_completion(&mut self) -> RunResult {
        self.run_window(u64::MAX)
    }

    /// The shared measurement driver: snapshot, run for `budget` more
    /// aggregate instructions (saturating, so `u64::MAX` means "until
    /// every stream ends"), and package the measured window.
    fn run_window(&mut self, budget: u64) -> RunResult {
        let snap: Vec<piranha_cpu::CoreStats> = self.cpu_stats();
        let t0 = self.now();
        self.run_until_total(self.total_instrs().saturating_add(budget));
        let t1 = self.now();
        let end = self.cpu_stats();
        let cpus: Vec<piranha_cpu::CoreStats> =
            end.iter().zip(&snap).map(|(e, s)| e.diff(s)).collect();
        let mut r = RunResult::new(
            self.cfg.name.clone(),
            t1.since(t0),
            self.cfg.cpu_clock,
            cpus,
        );
        r.mem_page_hit_rate = self.mem_page_hit_rate();
        self.finish_result(&mut r);
        r
    }

    /// Attach the availability ledger and committed-work count to a
    /// result, audit RAS mirror consistency, and snapshot metrics (the
    /// metrics stay outside the fingerprint; availability and committed
    /// work are folded in).
    pub(crate) fn finish_result(&mut self, r: &mut RunResult) {
        r.availability = self.availability();
        assert!(
            r.availability.is_consistent(),
            "availability ledger violated corrected + escalated == injected"
        );
        r.committed_txns = self.committed_txns();
        r.traffic = self.traffic_summary();
        self.check_ras();
        self.sample_metrics();
        r.metrics = self.probe.metrics().unwrap_or_default();
    }

    /// Total workload-level units of work (transactions, scan lines)
    /// committed across all streams that track one; `None` when no
    /// stream does (fixed-instruction-window runs).
    pub fn committed_txns(&self) -> Option<u64> {
        let mut total = 0u64;
        let mut any = false;
        for lane in &self.lanes {
            for s in lane.node.cpus.streams() {
                if let Some(c) = s.txns_committed() {
                    total += c;
                    any = true;
                }
            }
        }
        any.then_some(total)
    }

    /// Merged open-loop traffic results across all lanes (conservation
    /// ledger + birth→commit latency histogram); `None` when traffic is
    /// off.
    pub fn traffic_summary(&self) -> Option<piranha_traffic::TrafficSummary> {
        if !self.cfg.traffic.enabled() {
            return None;
        }
        let mut ledger = piranha_traffic::TrafficLedger::default();
        let mut latency = piranha_kernel::Histogram::new();
        for lane in &self.lanes {
            if lane.traffic.enabled() {
                let s = lane.traffic.summary();
                ledger.merge(&s.ledger);
                latency.merge(&s.latency);
            }
        }
        Some(piranha_traffic::TrafficSummary { ledger, latency })
    }

    /// The availability ledger accumulated so far, aggregated over the
    /// per-lane fault planes (merging consistent lane ledgers yields a
    /// consistent machine ledger).
    pub fn availability(&self) -> AvailabilityReport {
        let mut r = AvailabilityReport::default();
        for lane in &self.lanes {
            r.merge(lane.faults.report());
        }
        r
    }

    /// The fault-injection plane of node 0, which owns the scripted
    /// fault schedule (configuration, unfired script events). Random
    /// background faults draw from every lane's own plane; see
    /// [`Machine::availability`] for the machine-wide ledger.
    pub fn fault_plane(&self) -> &FaultPlane {
        &self.lanes[0].faults
    }

    /// The RAS policy of `node` (persistence journal, mirror log,
    /// capability faults).
    pub fn ras(&self, node: usize) -> &RasPolicy {
        &self.lanes[node].node.ras
    }

    /// Register `range` as persistent on `node`, returning the write
    /// capability (paper §2.7: capability-guarded persistent memory).
    pub fn ras_register_persistent(
        &mut self,
        node: usize,
        range: LineRange,
    ) -> piranha_protocol::Capability {
        self.lanes[node].node.ras.register_persistent(range)
    }

    /// Register `range` as mirrored on `node`: subsequent home-memory
    /// writes of its lines are duplicated into the mirror log.
    pub fn ras_register_mirrored(&mut self, node: usize, range: LineRange) {
        self.lanes[node].node.ras.register_mirrored(range);
    }

    /// Execute a persistent-memory barrier on `node` for `range`: every
    /// cached line of the range homed at `node` that is dirty relative
    /// to the journal is forced home (memory write + journal + mirror) —
    /// the paper's commit-without-disk-round-trip (§2.7). Returns how
    /// many lines were forced.
    pub fn ras_persist_barrier(&mut self, node: usize, range: LineRange) -> usize {
        let mut cached: Vec<(LineAddr, u64)> = Vec::new();
        for lane in &self.lanes {
            for (_slot, l1) in lane.node.caches.l1s().iter() {
                for (line, _state, v) in l1.resident() {
                    if range.contains(line) && self.home_of(line) == node {
                        cached.push((line, v));
                    }
                }
            }
        }
        let dirty = self.lanes[node]
            .node
            .ras
            .persist_barrier(range, cached.into_iter());
        let t = self.clock;
        for &(line, v) in &dirty {
            let bank = self.bank_of(node, line);
            let nd = &mut self.lanes[node].node;
            nd.mem.write(bank, t, line, v);
            nd.ras.on_home_write(line, v);
        }
        dirty.len()
    }

    /// Audit RAS consistency: every mirror-log entry must match the
    /// current home-memory version of its line. Runs at the end of every
    /// `run`/`run_to_completion`; a violation means a home write dodged
    /// the mirroring hooks.
    ///
    /// # Panics
    ///
    /// Panics naming the first divergent line.
    pub fn check_ras(&self) {
        for (n, lane) in self.lanes.iter().enumerate() {
            let node = &lane.node;
            for (line, v) in node.ras.mirror_entries() {
                let bank = (line.0 % node.mem.bank_count() as u64) as usize;
                let mem_v = node.mem.version(bank, line);
                assert_eq!(
                    v, mem_v,
                    "mirror log diverges from memory for {line} on node {n}"
                );
            }
        }
    }

    /// Run until the total retired instruction count reaches `target` (or
    /// every CPU is done).
    ///
    /// A single-chip machine runs the classic serial loop; a multi-chip
    /// machine runs the quantum-stepped engine at the configured worker
    /// count (see [`Machine::set_parallel_workers`]), with bit-identical
    /// results at every count.
    ///
    /// # Panics
    ///
    /// Panics if the event queues drain while CPUs are unfinished or the
    /// event budget is exhausted — both indicate a protocol deadlock bug.
    pub fn run_until_total(&mut self, target: u64) {
        debug_assert_eq!(
            self.lanes.iter().map(|l| l.instrs_retired).sum::<u64>(),
            self.total_instrs()
        );
        if self.lanes.len() == 1 {
            self.run_serial(target);
        } else {
            self.run_quanta(target);
        }
    }

    /// The classic single-chip loop: pop, dispatch, re-check the stop
    /// conditions every 64 events. Both the instruction total and the
    /// all-CPUs-done condition are tracked incrementally
    /// (`instrs_retired`, `unfinished`) rather than rescanned from the
    /// per-core statistics every iteration.
    fn run_serial(&mut self, target: u64) {
        let sh = LaneShared::new(&self.cfg, 1);
        let lane = &mut self.lanes[0];
        'outer: while lane.instrs_retired < target {
            if lane.unfinished == 0 {
                break;
            }
            for _ in 0..64 {
                let Some((t, ev)) = lane.events.pop() else {
                    assert!(
                        lane.unfinished == 0,
                        "event queue drained with unfinished CPUs: deadlock"
                    );
                    break 'outer;
                };
                assert!(
                    lane.events.popped() < 2_000_000_000,
                    "event budget exhausted: runaway simulation"
                );
                lane.dispatch(&sh, t, ev);
                debug_assert!(
                    lane.outbox.is_empty(),
                    "a single-chip machine generated cross-node traffic"
                );
            }
        }
        self.clock = self.clock.max(self.lanes[0].events.now());
        self.parsim.events = self.lanes[0].events.popped();
    }

    /// The multi-chip engine: conservative parallel-in-space execution
    /// with deterministic lookahead windows (`piranha-parsim`).
    ///
    /// Every window, all lanes advance independently — one per worker
    /// thread — to the horizon at `t_min + quantum`. The lookahead
    /// guarantee (no cross-node delivery lands in under `quantum`) means
    /// no lane can receive an event inside the window it is executing,
    /// so the windows need no locking. At the barrier the coordinator —
    /// with every worker provably parked, so the lanes are plain `&mut`,
    /// no per-lane mutexes — merges every lane's buffered departures in
    /// `(time, source, seq)` order into one reused buffer and routes
    /// them through the shared fabric; both that order and each lane's
    /// own event order are independent of the worker count, which is the
    /// determinism argument in one sentence. A window with no traffic
    /// skips the merge entirely (`empty_windows`).
    fn run_quanta(&mut self, target: u64) {
        let workers = self.workers.clamp(1, self.lanes.len());
        let Machine {
            cfg,
            lanes,
            net,
            probe,
            net_port,
            lookahead,
            parsim,
            clock,
            ..
        } = self;
        let cfg: &SystemConfig = cfg;
        let lookahead: &Lookahead = lookahead;
        let sh = LaneShared::new(cfg, lanes.len());
        let nlanes = lanes.len();
        // Per-lane barrier-stall histograms (noop handles when the probe
        // is disabled): worker w's gate-wait time is charged to every
        // lane it owns, making stragglers visible per simulated chip.
        let wait_hists: Vec<piranha_probe::HistogramHandle> = (0..nlanes)
            .map(|n| probe.histogram(&format!("parsim.node{n}.barrier_wait_ns")))
            .collect();
        let mut record_waits = |w: usize, ns: u64| {
            for h in wait_hists.iter().skip(w).step_by(workers) {
                h.record(ns);
            }
        };
        let mut merged: Vec<piranha_parsim::Merged<piranha_net::Depart<ProtoMsg>>> = Vec::new();
        let mut popped_total = 0u64;
        let stats = piranha_parsim::run_windows(
            workers,
            lanes,
            |lane, horizon| lane.advance(&sh, horizon),
            |lanes, stats| {
                // Merge the previous window's cross-node traffic in
                // deterministic (time, source, seq) order and route it
                // through the shared fabric, charging the *source*
                // lane's link-fault hooks.
                merged.clear();
                for (i, lane) in lanes.iter_mut().enumerate() {
                    lane.outbox.drain_into(i, &mut merged);
                }
                if merged.is_empty() {
                    stats.empty_windows += 1;
                } else {
                    piranha_parsim::sort_merged(&mut merged);
                    stats.merged_events += merged.len() as u64;
                    let mut path = NetPath {
                        cfg,
                        net,
                        port: net_port,
                        probe,
                        lookahead,
                    };
                    for m in merged.drain(..) {
                        let dest = m.payload.to.index();
                        let (arrive, from, msg) =
                            path.route(&mut lanes[m.source].faults, m.time, m.payload);
                        lanes[dest]
                            .events
                            .schedule(arrive, Ev::NetMsg { from, msg });
                    }
                }
                // Stop checks, then the next window's base time.
                let mut retired = 0u64;
                let mut unfinished = 0usize;
                let mut popped = 0u64;
                let mut t_min: Option<SimTime> = None;
                for lane in lanes.iter() {
                    retired += lane.instrs_retired;
                    unfinished += lane.unfinished;
                    popped += lane.events.popped();
                    *clock = (*clock).max(lane.events.now());
                    if let Some(t) = lane.events.peek_time() {
                        t_min = Some(match t_min {
                            Some(m) => m.min(t),
                            None => t,
                        });
                    }
                }
                assert!(
                    popped < 2_000_000_000,
                    "event budget exhausted: runaway simulation"
                );
                popped_total = popped;
                if retired >= target || unfinished == 0 {
                    return None;
                }
                let Some(base) = t_min else {
                    panic!("event queues drained with unfinished CPUs: deadlock");
                };
                Some(lookahead.horizon(base))
            },
            Some(&mut record_waits),
        );
        parsim.rounds += stats.rounds;
        parsim.windows += stats.windows;
        parsim.empty_windows += stats.empty_windows;
        parsim.merged_events += stats.merged_events;
        parsim.events = popped_total;
    }

    /// Stop a CPU through the node's system controller (paper §2.6: the
    /// SC can start/stop individual Alpha cores). In-flight transactions
    /// complete; the core simply stops being scheduled.
    pub fn stop_cpu(&mut self, node: usize, cpu: usize) {
        let lane = &mut self.lanes[node];
        let nd = &mut lane.node;
        let was_running = nd.sc.cpu_enabled(CpuId(cpu as u8)) && !nd.cpus.is_done(cpu);
        nd.sc.handle(crate::sysctl::CtrlPacket::StopCpu {
            cpu: CpuId(cpu as u8),
        });
        if was_running && !nd.sc.cpu_enabled(CpuId(cpu as u8)) {
            lane.unfinished -= 1;
        }
    }

    /// Restart a stopped CPU; it resumes its stream where it left off.
    pub fn start_cpu(&mut self, node: usize, cpu: usize) {
        let t = self.clock;
        let lane = &mut self.lanes[node];
        let nd = &mut lane.node;
        let was_stopped = !nd.sc.cpu_enabled(CpuId(cpu as u8));
        nd.sc.handle(crate::sysctl::CtrlPacket::StartCpu {
            cpu: CpuId(cpu as u8),
        });
        if was_stopped && nd.sc.cpu_enabled(CpuId(cpu as u8)) && !nd.cpus.is_done(cpu) {
            lane.unfinished += 1;
        }
        let at = t.max(lane.events.now());
        lane.events
            .schedule(at, Ev::Cpu(piranha_cpu::CpuEvent::Step { cpu }));
    }

    /// The system controller of `node` (configuration, interrupts,
    /// performance monitoring).
    pub fn system_controller(&self, node: usize) -> &crate::sysctl::SystemController {
        &self.lanes[node].node.sc
    }

    /// Verify system-wide coherence invariants; used by integration and
    /// property tests. Checks that (1) at most one cache in the whole
    /// system holds a line in a writable state (the single-writer
    /// invariant); (2) *within* a chip, a writable copy excludes every
    /// other local copy — exact because the intra-chip switch applies
    /// coherence atomically; (3) every L1-resident line is tracked by its
    /// bank's duplicate tags.
    ///
    /// A *remote* stale Shared copy may transiently coexist with a new
    /// owner's Modified copy: the paper's eager exclusive replies grant
    /// ownership before the cruise-missile invalidations land (§2.5.3),
    /// so that window is legal and not flagged.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_coherence(&self) {
        use std::collections::HashMap as Map;
        let mut writable: Map<LineAddr, (usize, Slot)> = Map::new();
        let mut per_node: Map<(usize, LineAddr), (u32, u32)> = Map::new(); // (copies, writable)
        for (n, lane) in self.lanes.iter().enumerate() {
            let node = &lane.node;
            for (slot, l1) in node.caches.l1s().iter() {
                for (line, state, _v) in l1.resident() {
                    let e = per_node.entry((n, line)).or_insert((0, 0));
                    e.0 += 1;
                    if state.writable() {
                        e.1 += 1;
                        if let Some((on, os)) = writable.insert(line, (n, slot)) {
                            panic!(
                                "two writable copies of {line}: node{on}/{os} and node{n}/{slot}"
                            );
                        }
                    }
                    let d = node
                        .caches
                        .dup(self.bank_of(n, line))
                        .get(line)
                        .unwrap_or_else(|| panic!("L1 line {line} missing from dup tags"));
                    assert!(
                        d.l1_state(slot).readable(),
                        "dup tags disagree with L1 for {line} at {slot}"
                    );
                }
            }
        }
        for ((n, line), (copies, writables)) in &per_node {
            if *writables > 0 {
                assert_eq!(
                    *copies, 1,
                    "writable line {line} coexists with other copies on node {n}"
                );
            }
        }
    }
}
