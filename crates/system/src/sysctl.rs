//! The System Control (SC) module — paper §2 and §2.6.
//!
//! "The System Control module takes care of miscellaneous
//! maintenance-related functions (e.g., system configuration,
//! initialization, interrupt distribution, exception handling,
//! performance monitoring)." At boot, the router forwards all
//! initialization packets to the SC, which "interprets control packets
//! and can access all control registers on a Piranha node", including
//! updating the routing table, starting/stopping individual Alpha
//! cores, and testing the off-chip memory.
//!
//! The model keeps a control-register file, the per-CPU enable bits, a
//! routing-table-loaded flag, and an interrupt distribution counter, and
//! interprets a small control-packet vocabulary.

use piranha_types::{CpuId, NodeId};

/// A control packet interpreted by the SC (delivered over the
/// interconnect during initialization, or generated locally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlPacket {
    /// Write a control register.
    WriteReg {
        /// Register index.
        reg: u8,
        /// Value.
        value: u64,
    },
    /// Read a control register (the SC replies with its value).
    ReadReg {
        /// Register index.
        reg: u8,
    },
    /// Install one routing-table entry: packets for `dest` leave through
    /// channel `channel`.
    SetRoute {
        /// Destination node.
        dest: NodeId,
        /// Output channel index (0..4).
        channel: u8,
    },
    /// Mark the routing table complete; transit traffic may now flow.
    CommitRoutes,
    /// Start an Alpha core.
    StartCpu {
        /// Which core.
        cpu: CpuId,
    },
    /// Stop an Alpha core.
    StopCpu {
        /// Which core.
        cpu: CpuId,
    },
    /// Run the off-chip memory test over `lines` lines.
    TestMemory {
        /// Number of lines to walk.
        lines: u64,
    },
    /// Deliver an interrupt to a core.
    Interrupt {
        /// Target core.
        cpu: CpuId,
    },
}

/// The SC's response to a control packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlReply {
    /// Acknowledged, no data.
    Ack,
    /// A register value.
    Value(u64),
    /// Memory test result: number of lines walked without error (the
    /// model's memory is always healthy; a real SC would compare
    /// patterns).
    MemoryOk(u64),
    /// The packet addressed a CPU the node does not have.
    BadCpu,
}

/// Number of architected control registers.
pub const CTRL_REGS: usize = 64;

/// The per-node system controller.
///
/// # Examples
///
/// ```
/// use piranha_system::sysctl::{CtrlPacket, CtrlReply, SystemController};
/// use piranha_types::{CpuId, NodeId};
///
/// let mut sc = SystemController::new(NodeId(0), 8);
/// assert!(!sc.cpu_enabled(CpuId(3)));
/// sc.handle(CtrlPacket::StartCpu { cpu: CpuId(3) });
/// assert!(sc.cpu_enabled(CpuId(3)));
/// ```
#[derive(Debug)]
pub struct SystemController {
    node: NodeId,
    regs: [u64; CTRL_REGS],
    cpu_enabled: Vec<bool>,
    routes: Vec<Option<u8>>,
    routes_committed: bool,
    interrupts: Vec<u64>,
    packets_handled: u64,
}

impl SystemController {
    /// A freshly-reset SC: all cores stopped, routing table empty (the
    /// traditional Alpha EPROM boot path would instead start core 0
    /// directly; see [`SystemController::eprom_boot`]).
    pub fn new(node: NodeId, cpus: usize) -> Self {
        SystemController {
            node,
            regs: [0; CTRL_REGS],
            cpu_enabled: vec![false; cpus],
            routes: vec![None; piranha_types::ids::MAX_NODES],
            routes_committed: false,
            interrupts: vec![0; cpus],
            packets_handled: 0,
        }
    }

    /// The node this SC controls.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Interpret one control packet.
    pub fn handle(&mut self, pkt: CtrlPacket) -> CtrlReply {
        self.packets_handled += 1;
        match pkt {
            CtrlPacket::WriteReg { reg, value } => {
                self.regs[reg as usize % CTRL_REGS] = value;
                CtrlReply::Ack
            }
            CtrlPacket::ReadReg { reg } => CtrlReply::Value(self.regs[reg as usize % CTRL_REGS]),
            CtrlPacket::SetRoute { dest, channel } => {
                self.routes[dest.index()] = Some(channel);
                CtrlReply::Ack
            }
            CtrlPacket::CommitRoutes => {
                self.routes_committed = true;
                CtrlReply::Ack
            }
            CtrlPacket::StartCpu { cpu } => match self.cpu_enabled.get_mut(cpu.index()) {
                Some(e) => {
                    *e = true;
                    CtrlReply::Ack
                }
                None => CtrlReply::BadCpu,
            },
            CtrlPacket::StopCpu { cpu } => match self.cpu_enabled.get_mut(cpu.index()) {
                Some(e) => {
                    *e = false;
                    CtrlReply::Ack
                }
                None => CtrlReply::BadCpu,
            },
            CtrlPacket::TestMemory { lines } => CtrlReply::MemoryOk(lines),
            CtrlPacket::Interrupt { cpu } => match self.interrupts.get_mut(cpu.index()) {
                Some(n) => {
                    *n += 1;
                    CtrlReply::Ack
                }
                None => CtrlReply::BadCpu,
            },
        }
    }

    /// Whether `cpu` is currently enabled.
    pub fn cpu_enabled(&self, cpu: CpuId) -> bool {
        self.cpu_enabled.get(cpu.index()).copied().unwrap_or(false)
    }

    /// Whether the routing table has been committed.
    pub fn routes_ready(&self) -> bool {
        self.routes_committed
    }

    /// The committed output channel toward `dest`, if installed.
    pub fn route(&self, dest: NodeId) -> Option<u8> {
        self.routes[dest.index()]
    }

    /// Interrupts delivered to `cpu` so far.
    pub fn interrupts(&self, cpu: CpuId) -> u64 {
        self.interrupts.get(cpu.index()).copied().unwrap_or(0)
    }

    /// Control packets interpreted (performance-monitoring counter).
    pub fn packets_handled(&self) -> u64 {
        self.packets_handled
    }

    /// The in-band initialization sequence of §2.6: install a route per
    /// reachable node, commit, memory-test, then start every core.
    ///
    /// Returns the replies, in order, for inspection.
    pub fn interconnect_boot(&mut self, reachable: &[NodeId], mem_lines: u64) -> Vec<CtrlReply> {
        let mut replies = Vec::new();
        for (i, &dest) in reachable.iter().enumerate() {
            replies.push(self.handle(CtrlPacket::SetRoute {
                dest,
                channel: (i % 4) as u8,
            }));
        }
        replies.push(self.handle(CtrlPacket::CommitRoutes));
        replies.push(self.handle(CtrlPacket::TestMemory { lines: mem_lines }));
        for c in 0..self.cpu_enabled.len() {
            replies.push(self.handle(CtrlPacket::StartCpu {
                cpu: CpuId(c as u8),
            }));
        }
        replies
    }

    /// The traditional Alpha boot path ("the primary caches are loaded
    /// from a small external EPROM over a bit-serial connection"): only
    /// core 0 starts; it brings up the rest through control registers.
    pub fn eprom_boot(&mut self) {
        self.packets_handled += 1;
        if let Some(e) = self.cpu_enabled.first_mut() {
            *e = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_read_back() {
        let mut sc = SystemController::new(NodeId(1), 8);
        assert_eq!(
            sc.handle(CtrlPacket::WriteReg {
                reg: 7,
                value: 0xabcd
            }),
            CtrlReply::Ack
        );
        assert_eq!(
            sc.handle(CtrlPacket::ReadReg { reg: 7 }),
            CtrlReply::Value(0xabcd)
        );
        assert_eq!(
            sc.handle(CtrlPacket::ReadReg { reg: 8 }),
            CtrlReply::Value(0)
        );
    }

    #[test]
    fn cpu_start_stop_lifecycle() {
        let mut sc = SystemController::new(NodeId(0), 2);
        assert!(!sc.cpu_enabled(CpuId(1)));
        sc.handle(CtrlPacket::StartCpu { cpu: CpuId(1) });
        assert!(sc.cpu_enabled(CpuId(1)));
        sc.handle(CtrlPacket::StopCpu { cpu: CpuId(1) });
        assert!(!sc.cpu_enabled(CpuId(1)));
        assert_eq!(
            sc.handle(CtrlPacket::StartCpu { cpu: CpuId(5) }),
            CtrlReply::BadCpu
        );
    }

    #[test]
    fn interconnect_boot_brings_everything_up() {
        let mut sc = SystemController::new(NodeId(0), 8);
        let peers: Vec<NodeId> = (1..4).map(NodeId).collect();
        let replies = sc.interconnect_boot(&peers, 1024);
        assert!(sc.routes_ready());
        assert_eq!(sc.route(NodeId(2)), Some(1));
        assert!((0..8).all(|c| sc.cpu_enabled(CpuId(c))));
        assert!(replies.contains(&CtrlReply::MemoryOk(1024)));
        assert_eq!(sc.packets_handled(), peers.len() as u64 + 2 + 8);
    }

    #[test]
    fn eprom_boot_starts_only_core_zero() {
        let mut sc = SystemController::new(NodeId(0), 8);
        sc.eprom_boot();
        assert!(sc.cpu_enabled(CpuId(0)));
        assert!((1..8).all(|c| !sc.cpu_enabled(CpuId(c))));
    }

    #[test]
    fn interrupt_distribution_counts() {
        let mut sc = SystemController::new(NodeId(0), 4);
        for _ in 0..3 {
            sc.handle(CtrlPacket::Interrupt { cpu: CpuId(2) });
        }
        assert_eq!(sc.interrupts(CpuId(2)), 3);
        assert_eq!(sc.interrupts(CpuId(0)), 0);
    }
}
