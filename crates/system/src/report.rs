//! Whole-machine utilization reports — the "performance monitoring"
//! function the paper assigns to the system controller (§2).

use std::fmt;

use piranha_types::SimTime;

use crate::machine::ParsimStats;

/// A utilization snapshot of one node.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// ICS 64-bit words moved.
    pub ics_words: u64,
    /// ICS aggregate datapath utilization (0..1).
    pub ics_utilization: f64,
    /// L2 bank lookups served, summed over banks.
    pub bank_lookups: u64,
    /// RDRAM accesses, summed over channels.
    pub mem_accesses: u64,
    /// RDRAM open-page hit rate across channels.
    pub mem_page_hit_rate: f64,
    /// Home-engine messages handled.
    pub home_msgs: u64,
    /// Remote-engine messages handled.
    pub remote_msgs: u64,
    /// Home-engine microinstructions executed (occupancy).
    pub home_instrs: u64,
    /// Remote-engine microinstructions executed.
    pub remote_instrs: u64,
    /// Peak concurrent TSRF entries (home, remote).
    pub tsrf_high_water: (usize, usize),
    /// Control packets the system controller interpreted.
    pub sc_packets: u64,
    /// Work units committed per core (transactions, queries, scan
    /// lines), in core order; zero for streams that track none.
    pub core_units: Vec<u64>,
}

/// A machine-wide utilization report.
#[derive(Debug, Clone)]
pub struct MachineReport {
    /// Simulated time of the snapshot.
    pub now: SimTime,
    /// Per-node snapshots.
    pub nodes: Vec<NodeReport>,
    /// Interconnect packets delivered.
    pub net_delivered: u64,
    /// Hot-potato deflections taken.
    pub net_deflections: u64,
    /// Mean hops per delivered packet.
    pub net_mean_hops: f64,
    /// Fabric occupancy and loss counters (per-link wire time, drops,
    /// PFC pauses, per-node deflection split).
    pub net_fabric: piranha_net::FabricStats,
    /// Total instructions retired.
    pub instrs: u64,
    /// Parallel-engine counters (zero except `events` on single-chip
    /// machines, which run the serial loop).
    pub parsim: ParsimStats,
    /// Open-loop traffic results; `None` when traffic is off.
    pub traffic: Option<piranha_traffic::TrafficSummary>,
}

impl MachineReport {
    /// Total protocol messages across all engines.
    pub fn protocol_msgs(&self) -> u64 {
        self.nodes.iter().map(|n| n.home_msgs + n.remote_msgs).sum()
    }

    /// Flatten the report into probe-style `(name, value)` metric rows
    /// (same hierarchical naming as `Machine::sample_metrics`), ready
    /// for CSV/JSON export via [`piranha_probe::MetricsSnapshot`].
    pub fn to_metrics(&self) -> piranha_probe::MetricsSnapshot {
        use piranha_probe::MetricValue as V;
        let mut rows: Vec<(String, V)> = vec![
            ("machine.instrs".into(), V::Count(self.instrs)),
            ("net.delivered".into(), V::Count(self.net_delivered)),
            ("net.deflections".into(), V::Count(self.net_deflections)),
            ("net.mean_hops".into(), V::Value(self.net_mean_hops)),
            ("net.drops".into(), V::Count(self.net_fabric.drops)),
            ("net.pauses".into(), V::Count(self.net_fabric.pauses)),
            (
                "net.pause_ns".into(),
                V::Count(self.net_fabric.pause_time.as_ns()),
            ),
            ("net.links".into(), V::Count(self.net_fabric.links as u64)),
            (
                "net.link_busy_ns".into(),
                V::Count(self.net_fabric.link_busy.as_ns()),
            ),
            (
                "net.link_max_busy_ns".into(),
                V::Count(self.net_fabric.max_link_busy.as_ns()),
            ),
            ("protocol.msgs".into(), V::Count(self.protocol_msgs())),
            (
                "protocol.mean_occupancy".into(),
                V::Value(self.mean_engine_occupancy()),
            ),
            ("parsim.rounds".into(), V::Count(self.parsim.rounds)),
            ("parsim.windows".into(), V::Count(self.parsim.windows)),
            (
                "parsim.empty_windows".into(),
                V::Count(self.parsim.empty_windows),
            ),
            (
                "parsim.merged_events".into(),
                V::Count(self.parsim.merged_events),
            ),
            ("parsim.events".into(), V::Count(self.parsim.events)),
        ];
        for (n, node) in self.nodes.iter().enumerate() {
            rows.push((format!("ics.node{n}.words"), V::Count(node.ics_words)));
            rows.push((
                format!("ics.node{n}.utilization"),
                V::Value(node.ics_utilization),
            ));
            rows.push((
                format!("cache.node{n}.bank_lookups"),
                V::Count(node.bank_lookups),
            ));
            rows.push((format!("mem.node{n}.accesses"), V::Count(node.mem_accesses)));
            rows.push((
                format!("mem.node{n}.page_hit_rate"),
                V::Value(node.mem_page_hit_rate),
            ));
            rows.push((
                format!("protocol.node{n}.home_msgs"),
                V::Count(node.home_msgs),
            ));
            rows.push((
                format!("protocol.node{n}.remote_msgs"),
                V::Count(node.remote_msgs),
            ));
            rows.push((format!("sc.node{n}.packets"), V::Count(node.sc_packets)));
            for (c, units) in node.core_units.iter().enumerate() {
                rows.push((format!("cpu.node{n}.core{c}.units"), V::Count(*units)));
            }
        }
        if let Some(t) = &self.traffic {
            rows.push(("traffic.generated".into(), V::Count(t.ledger.generated)));
            rows.push(("traffic.accepted".into(), V::Count(t.ledger.accepted)));
            rows.push(("traffic.dropped".into(), V::Count(t.ledger.dropped)));
            rows.push(("traffic.deferred".into(), V::Count(t.ledger.deferred)));
            rows.push(("traffic.completed".into(), V::Count(t.ledger.completed)));
            rows.push(("traffic.txn_latency_ns.p50".into(), V::Count(t.p50_ns())));
            rows.push(("traffic.txn_latency_ns.p95".into(), V::Count(t.p95_ns())));
            rows.push(("traffic.txn_latency_ns.p99".into(), V::Count(t.p99_ns())));
            rows.push(("traffic.drop_rate".into(), V::Value(t.drop_rate())));
        }
        piranha_probe::MetricsSnapshot::from_entries(rows)
    }

    /// Committed-work throughput of one core in transactions per
    /// simulated millisecond (0 before any time elapses).
    pub fn core_txn_per_ms(&self, units: u64) -> f64 {
        let ns = self.now.since(piranha_types::SimTime::ZERO).as_ns();
        if ns == 0 {
            0.0
        } else {
            units as f64 * 1.0e6 / ns as f64
        }
    }

    /// Mean protocol-engine occupancy in microinstructions per handled
    /// message (the paper's "few instructions at each engine").
    pub fn mean_engine_occupancy(&self) -> f64 {
        let instrs: u64 = self
            .nodes
            .iter()
            .map(|n| n.home_instrs + n.remote_instrs)
            .sum();
        let msgs = self.protocol_msgs().max(1);
        instrs as f64 / msgs as f64
    }
}

impl fmt::Display for MachineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "machine report @ {} ({} instructions retired)",
            self.now, self.instrs
        )?;
        writeln!(
            f,
            "  interconnect: {} delivered, {} deflections, {:.2} mean hops, {} drops, {} pauses",
            self.net_delivered,
            self.net_deflections,
            self.net_mean_hops,
            self.net_fabric.drops,
            self.net_fabric.pauses
        )?;
        writeln!(
            f,
            "  protocol engines: {} messages, {:.1} µinstrs/message",
            self.protocol_msgs(),
            self.mean_engine_occupancy()
        )?;
        if self.parsim.windows > 0 {
            writeln!(
                f,
                "  parallel engine: {} rounds over {} windows ({} empty), {} merged events",
                self.parsim.rounds,
                self.parsim.windows,
                self.parsim.empty_windows,
                self.parsim.merged_events
            )?;
        }
        for (i, n) in self.nodes.iter().enumerate() {
            writeln!(
                f,
                "  node {i}: ICS {} words ({:.1}% util) | banks {} lookups | RDRAM {} accesses ({:.0}% page hits) | TSRF hw {}/{} | SC {} pkts",
                n.ics_words,
                n.ics_utilization * 100.0,
                n.bank_lookups,
                n.mem_accesses,
                n.mem_page_hit_rate * 100.0,
                n.tsrf_high_water.0,
                n.tsrf_high_water.1,
                n.sc_packets
            )?;
            if n.core_units.iter().any(|&u| u > 0) {
                let rates: Vec<String> = n
                    .core_units
                    .iter()
                    .map(|&u| format!("{u} ({:.2}/ms)", self.core_txn_per_ms(u)))
                    .collect();
                writeln!(f, "    committed txns per core: {}", rates.join(", "))?;
            }
        }
        if let Some(t) = &self.traffic {
            writeln!(
                f,
                "  traffic: p50 {} ns, p95 {} ns, p99 {} ns | offered {}, accepted {}, completed {}, dropped {} ({:.2}% drop)",
                t.p50_ns(),
                t.p95_ns(),
                t.p99_ns(),
                t.ledger.generated,
                t.ledger.accepted,
                t.ledger.completed,
                t.ledger.dropped,
                t.drop_rate() * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MachineReport {
        MachineReport {
            now: SimTime::from_ns(1000),
            nodes: vec![NodeReport {
                ics_words: 500,
                ics_utilization: 0.125,
                bank_lookups: 40,
                mem_accesses: 10,
                mem_page_hit_rate: 0.3,
                home_msgs: 6,
                remote_msgs: 4,
                home_instrs: 30,
                remote_instrs: 20,
                tsrf_high_water: (2, 3),
                sc_packets: 11,
                core_units: vec![500, 0],
            }],
            net_delivered: 9,
            net_deflections: 1,
            net_mean_hops: 1.4,
            net_fabric: piranha_net::FabricStats::default(),
            instrs: 12345,
            parsim: ParsimStats {
                rounds: 3,
                windows: 17,
                empty_windows: 2,
                merged_events: 9,
                events: 400,
            },
            traffic: None,
        }
    }

    #[test]
    fn aggregates() {
        let r = sample();
        assert_eq!(r.protocol_msgs(), 10);
        assert!((r.mean_engine_occupancy() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_complete() {
        let text = sample().to_string();
        for needle in [
            "12345 instructions",
            "9 delivered",
            "ICS 500 words",
            "TSRF hw 2/3",
            "SC 11 pkts",
            "3 rounds over 17 windows (2 empty)",
            // 500 txns in 1000 ns = 500_000/ms.
            "committed txns per core: 500 (500000.00/ms), 0 (0.00/ms)",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert!(
            !text.contains("traffic:"),
            "no traffic block when traffic is off:\n{text}"
        );
    }

    #[test]
    fn display_shows_traffic_when_on() {
        let mut r = sample();
        let mut latency = piranha_kernel::Histogram::new();
        for ns in [100u64, 200, 400, 10_000] {
            latency.record(piranha_types::Duration::from_ns(ns));
        }
        r.traffic = Some(piranha_traffic::TrafficSummary {
            ledger: piranha_traffic::TrafficLedger {
                generated: 20,
                accepted: 16,
                dropped: 4,
                deferred: 0,
                completed: 16,
            },
            latency,
        });
        let text = r.to_string();
        for needle in ["traffic: p50 ", "p99 ", "offered 20", "(20.00% drop)"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        let m = r.to_metrics();
        assert!(m.get("traffic.generated").is_some());
        assert!(m.get("traffic.txn_latency_ns.p99").is_some());
        assert!(m.get("cpu.node0.core0.units").is_some());
    }
}
