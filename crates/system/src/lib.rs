//! System assembly: whole Piranha chips and glueless multi-chip machines.
//!
//! This crate wires the component models together — CPU cores and their
//! L1s (`piranha-cpu`, `piranha-cache`), the intra-chip switch
//! (`piranha-ics`), the eight L2 banks with their memory controllers
//! (`piranha-cache`, `piranha-mem`), the two protocol engines
//! (`piranha-protocol`), and the interconnect (`piranha-net`) — into a
//! deterministic event-driven [`Machine`], and provides the
//! configuration presets of the paper's Table 1 ([`SystemConfig`]).
//!
//! ## Timing discipline
//!
//! Coherence *state* changes are applied synchronously at well-defined
//! instants (justified by the transactional, ordered intra-chip switch,
//! §2.2), while *timing* flows through queueing servers: bank occupancy,
//! ICS datapaths, RDRAM devices and channels, protocol-engine occupancy
//! (charged per microinstruction, §2.5.1), and interconnect links. Fixed
//! path latencies are calibrated so the end-to-end service times match
//! Table 1 (16/24 ns L2 hit/forward for the prototype, 12 ns for the OOO
//! baseline and full-custom parts, 80 ns local memory).

#![warn(missing_docs)]

pub mod config;
pub(crate) mod dispatch;
pub mod machine;
pub(crate) mod node;
pub mod report;
pub mod result;
pub mod sysctl;
pub(crate) mod warm;
pub(crate) mod wiring;

#[cfg(test)]
mod tests;

pub use config::{CoreKind, PathLatencies, SystemConfig};
pub use machine::{Machine, ParsimStats};
pub use piranha_faults::{AvailabilityReport, FaultConfig, FaultKind};
pub use piranha_net::{FabricStats, NetworkConfig, QueueDiscipline, RoutePolicy, TopologyKind};
pub use piranha_probe::{Probe, ProbeConfig, TraceLevel};
pub use piranha_sample::{Estimator, SampleConfig, SampleEstimate};
pub use piranha_traffic::{
    ArrivalKind, DiurnalCurve, OverflowPolicy, TrafficConfig, TrafficLedger, TrafficSummary,
};
pub use report::{MachineReport, NodeReport};
pub use result::{CpuBreakdown, RunResult};
pub use sysctl::{CtrlPacket, CtrlReply, SystemController};
pub use warm::SampleTally;
