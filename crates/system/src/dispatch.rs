//! Event dispatch: routing between the component adapters.
//!
//! This is the only layer that knows the machine's topology of
//! components. Each arm of [`NodeLane::dispatch`] hands the event to the
//! owning adapter's `Component::handle` and routes the actions that come
//! back out of its port — it contains **no subsystem logic** of its own.
//! The two cross-cutting concerns the paper treats as system-level —
//! fault injection/recovery (§2.7) and observability — are applied here,
//! uniformly at the port boundary, so no subsystem crate knows they
//! exist.
//!
//! Dispatch is written against one `NodeLane` at a time so nodes can
//! advance on independent worker threads: everything a handler touches
//! lives on the lane, and the single cross-node path (a protocol
//! engine's `Send`) buffers into the lane's outbox instead of touching
//! another node's queue. The buffered departures are routed through the
//! shared fabric at the next quantum barrier by [`NetPath::route`],
//! which also enforces the conservative-lookahead invariant every
//! cross-node delivery must respect.

use std::collections::VecDeque;

use piranha_cache::{BankAction, BankEvent, CacheEvent, Mesi, Slot};
use piranha_cpu::{CpuAction, CpuCtx, CpuEvent};
use piranha_faults::{FaultKind, FaultPlane};
use piranha_ics::TransferSize;
use piranha_kernel::{Component, Port};
use piranha_mem::{MemEvent, Scrub};
use piranha_net::{crc32, flip_bit, Arrive, Depart, Fabric, Packet, PacketKind};
use piranha_probe::{Probe, TraceLevel};
use piranha_protocol::coherence::occupancy_cycles;
use piranha_protocol::{EngineAction, EngineEvent, HomeIn, ProtoMsg, RemoteIn};
use piranha_types::{CpuId, Duration, FillSource, Lane, LineAddr, NodeId, SimTime};

use crate::config::SystemConfig;
use crate::machine::PAGE_LINES;
use crate::node::{Node, NodeDirs, NodeLane};
use crate::wiring::{track_base, TRACK_BANK, TRACK_HOME, TRACK_MEM, TRACK_NET, TRACK_REMOTE};

/// An event on a lane's partition. The handling node is the partition's
/// own dimension, so events name only the in-node target.
#[derive(Debug, Clone)]
pub(crate) enum Ev {
    /// An event for the node's CPU cluster (step or fill).
    Cpu(CpuEvent),
    /// An event for one of the node's L2 banks.
    Bank(CacheEvent),
    /// A memory read's critical word is available.
    MemRead(MemEvent),
    /// A protocol message arrives at the node.
    NetMsg { from: NodeId, msg: ProtoMsg },
}

/// A unit of synchronous follow-on work inside one dispatch.
pub(crate) enum Item {
    Bank(BankAction),
    Eng(EngineAction),
}

/// Convert a CPU cycle number to simulated time under `cfg`'s clock.
pub(crate) fn cycle_to_time(cfg: &SystemConfig, cycle: u64) -> SimTime {
    SimTime::ZERO + cfg.cpu_clock.cycles_dur(cycle)
}

/// Convert simulated time to a CPU cycle number under `cfg`'s clock.
pub(crate) fn time_to_cycle(cfg: &SystemConfig, t: SimTime) -> u64 {
    cfg.cpu_clock.cycles(t.since(SimTime::ZERO))
}

/// The read-only machine facts every lane needs while it advances:
/// the configuration and the line-interleaving geometry. Shared by all
/// worker threads inside a quantum (it is never written during one).
pub(crate) struct LaneShared<'a> {
    pub(crate) cfg: &'a SystemConfig,
    /// Total lane (node) count, for home interleaving.
    pub(crate) lanes: usize,
}

impl<'a> LaneShared<'a> {
    pub(crate) fn new(cfg: &'a SystemConfig, lanes: usize) -> Self {
        LaneShared { cfg, lanes }
    }

    /// The home node of a line (8 KB pages interleaved round-robin).
    pub(crate) fn home_of(&self, line: LineAddr) -> usize {
        ((line.0 / PAGE_LINES) % self.lanes as u64) as usize
    }

    pub(crate) fn cycle_to_time(&self, cycle: u64) -> SimTime {
        cycle_to_time(self.cfg, cycle)
    }

    pub(crate) fn time_to_cycle(&self, t: SimTime) -> u64 {
        time_to_cycle(self.cfg, t)
    }

    /// Reply latency from bank to CPU by service point.
    pub(crate) fn reply_latency(&self, source: FillSource) -> Duration {
        match source {
            FillSource::L2Fwd => self.cfg.lat.reply + self.cfg.lat.fwd_probe,
            _ => self.cfg.lat.reply,
        }
    }
}

impl NodeLane {
    /// Drain and dispatch every lane event strictly before `horizon`.
    /// This is the per-worker body of a quantum: the conservative bound
    /// guarantees no other lane can schedule into `[now, horizon)`, so
    /// the lane advances with no synchronization at all.
    pub(crate) fn advance(&mut self, sh: &LaneShared<'_>, horizon: SimTime) {
        while self.events.peek_time().is_some_and(|t| t < horizon) {
            let (t, ev) = self.events.pop().expect("peeked event");
            self.dispatch(sh, t, ev);
        }
    }

    pub(crate) fn bank_of(&self, line: LineAddr) -> usize {
        (line.0 % self.node.caches.bank_count() as u64) as usize
    }

    pub(crate) fn dispatch(&mut self, sh: &LaneShared<'_>, t: SimTime, ev: Ev) {
        match ev {
            Ev::Cpu(ev) => self.cpu_event(sh, t, ev),
            Ev::Bank(ce) => {
                self.probe.span(
                    TraceLevel::Spans,
                    "cache",
                    "bank.lookup",
                    track_base(self.index) + TRACK_BANK + ce.bank as u32,
                    t.as_ps(),
                    sh.cfg.lat.bank.as_ps(),
                    0,
                );
                let mut port = std::mem::take(&mut self.bank_port);
                self.node.caches.handle(t, ce, (), &mut port);
                let items: Vec<Item> = port.drain().map(|(_, a)| Item::Bank(a)).collect();
                self.bank_port = port;
                self.apply(sh, t, items);
            }
            Ev::MemRead(me) => {
                self.probe.instant(
                    TraceLevel::Spans,
                    "mem",
                    "dram.read",
                    track_base(self.index) + TRACK_MEM + me.bank as u32,
                    t.as_ps(),
                    me.line.0,
                );
                // The memory array reads version/directory at data-return
                // time, so intervening writes are observed; its MemData
                // goes straight back to the requesting bank.
                let mut mport = std::mem::take(&mut self.mem_port);
                self.node.mem.handle(t, me, (), &mut mport);
                let mut bport = std::mem::take(&mut self.bank_port);
                for (_, d) in mport.drain() {
                    self.node.caches.handle(
                        t,
                        CacheEvent {
                            bank: d.bank,
                            ev: BankEvent::MemData {
                                line: d.line,
                                version: d.version,
                                remote: d.remote,
                            },
                        },
                        (),
                        &mut bport,
                    );
                }
                self.mem_port = mport;
                let items: Vec<Item> = bport.drain().map(|(_, a)| Item::Bank(a)).collect();
                self.bank_port = bport;
                self.apply(sh, t, items);
            }
            Ev::NetMsg { from, msg } => {
                let line = msg.line();
                let kind = match &msg {
                    ProtoMsg::Req { .. } => "req",
                    ProtoMsg::Reply { .. } => "reply",
                    ProtoMsg::Fwd { .. } => "fwd",
                    ProtoMsg::Inval { .. } => "inval",
                    ProtoMsg::InvalAck { .. } | ProtoMsg::WbAck { .. } => "ack",
                    _ => "wb",
                };
                let is_home = sh.home_of(line) == self.index;
                let mut pe_cycles = occupancy_cycles(kind);
                if self.faults.enabled() {
                    let cyc = sh.time_to_cycle(t);
                    if let Some(h) = self.faults.engine_hiccup(cyc) {
                        // The engine's watchdog expires and the handler
                        // replays from its TSRF-recorded inputs: extra
                        // occupancy, same architectural outcome (the
                        // state machine only commits at completion).
                        let extra = self.node.engines.replay(kind);
                        pe_cycles += extra;
                        self.faults.note_recovery(h.kind, true, extra, 0);
                        self.probe.instant(
                            TraceLevel::Spans,
                            "faults",
                            "engine.replay",
                            track_base(self.index)
                                + if is_home { TRACK_HOME } else { TRACK_REMOTE },
                            t.as_ps(),
                            extra,
                        );
                    }
                }
                let occ = sh.cfg.lat.pe_instr.times(pe_cycles);
                self.probe.span(
                    TraceLevel::Spans,
                    "protocol",
                    if is_home { "home" } else { "remote" },
                    track_base(self.index) + if is_home { TRACK_HOME } else { TRACK_REMOTE },
                    t.as_ps(),
                    occ.as_ps(),
                    line.0,
                );
                let mut port = std::mem::take(&mut self.eng_port);
                {
                    let nd = &mut self.node;
                    nd.engines.acquire(is_home, t, occ);
                    let Node { engines, mem, .. } = nd;
                    let mut dirs = NodeDirs {
                        banks: mem.banks_mut(),
                    };
                    let ev = if is_home {
                        EngineEvent::Home(HomeIn::Msg { from, msg })
                    } else {
                        EngineEvent::Remote(RemoteIn::Msg { from, msg })
                    };
                    engines.handle(t, ev, &mut dirs, &mut port);
                }
                let items: Vec<Item> = port.drain().map(|(_, a)| Item::Eng(a)).collect();
                self.eng_port = port;
                self.apply(sh, t, items);
            }
        }
    }

    /// Deliver one event to the node's CPU cluster and route the
    /// resulting actions: memory requests toward the L2 (via the ICS and
    /// the bank occupancy server), reschedules onto the partition, and
    /// completions into the run loop's `unfinished` count.
    fn cpu_event(&mut self, sh: &LaneShared<'_>, t: SimTime, ev: CpuEvent) {
        let (cpu, is_step) = match ev {
            CpuEvent::Step { cpu } => (cpu, true),
            // Warm steps are synchronous-only: the sampled-execution
            // driver resolves them outside the calendar.
            CpuEvent::WarmStep { .. } => unreachable!("WarmStep on the detailed calendar"),
            CpuEvent::Fill { cpu, id, .. } => {
                self.probe.instant(
                    TraceLevel::Verbose,
                    "cpu",
                    "fill",
                    track_base(self.index) + cpu as u32,
                    t.as_ps(),
                    id,
                );
                (cpu, false)
            }
        };
        let fill_cycle = sh.time_to_cycle(t);
        let mut port = std::mem::take(&mut self.cpu_port);
        let (retired, cyc_delta) = {
            let NodeLane {
                node,
                versions,
                version_stride,
                ..
            } = self;
            let Node {
                cpus, caches, sc, ..
            } = node;
            let before = cpus.core(cpu).stats().instrs;
            let cyc_before = cpus.core(cpu).now_cycle();
            let ctx = CpuCtx {
                l1s: caches.l1s_mut(),
                versions,
                version_stride: *version_stride,
                enabled: sc.cpu_enabled(CpuId(cpu as u8)),
                fill_cycle,
            };
            cpus.handle(t, ev, ctx, &mut port);
            (
                cpus.core(cpu).stats().instrs - before,
                cpus.core(cpu).now_cycle() - cyc_before,
            )
        };
        self.instrs_retired += retired;
        // Open-loop traffic: the park check inside the core's advance
        // stamps a transaction's commit cycle; drain it here — before the
        // action loop below can poll the plane for the next admission —
        // and close the birth→commit latency ledger.
        if self.traffic.enabled() {
            if let Some(commit) = self.node.cpus.stream_mut(cpu).take_completion() {
                if let Some(ns) = self.traffic.complete(cpu, commit) {
                    if let Some(h) = self.traffic_hists.get(cpu) {
                        h.record(ns);
                    }
                }
            }
        }
        if is_step && cyc_delta > 0 {
            self.probe.span(
                TraceLevel::Spans,
                "cpu",
                "step",
                track_base(self.index) + cpu as u32,
                t.as_ps(),
                sh.cfg.cpu_clock.cycles_dur(cyc_delta).as_ps(),
                retired,
            );
        }
        for (_, act) in port.drain() {
            match act {
                CpuAction::Issue { cpu, at_cycle, req } => {
                    let issue = sh.cycle_to_time(at_cycle).max(t);
                    // Request message over the ICS (header) + path latency.
                    let tics = self
                        .node
                        .ics
                        .transfer(issue, TransferSize::Header, Lane::Low);
                    let arrive = (issue + sh.cfg.lat.req).max(tics);
                    let bank = self.bank_of(req.line);
                    let exec = self.node.caches.acquire(bank, arrive, sh.cfg.lat.bank);
                    let slot = Slot::new(CpuId(cpu as u8), req.kind);
                    let prev = self.outstanding.insert((slot, req.line), req.id);
                    assert!(
                        prev.is_none(),
                        "duplicate outstanding request for {slot} {}",
                        req.line
                    );
                    let home_local = sh.home_of(req.line) == self.index;
                    self.events.schedule(
                        exec.max(t),
                        Ev::Bank(CacheEvent {
                            bank,
                            ev: BankEvent::Miss {
                                slot,
                                req: req.req,
                                line: req.line,
                                home_local,
                                store_version: req.store_version,
                            },
                        }),
                    );
                }
                CpuAction::Wake { cpu, at_cycle } => {
                    let next = sh.cycle_to_time(at_cycle).max(t);
                    // Open-loop traffic: a parked stream's wake is an
                    // admission request, not a step. Once the boundary is
                    // fully drained (commit stamped and collected above),
                    // consult the plane instead of stepping blindly.
                    if self.traffic.enabled() {
                        let stream = self.node.cpus.stream(cpu);
                        if stream.parked() && !stream.boundary_pending() {
                            if stream.exhausted() {
                                // Let the core observe end-of-stream and
                                // finish; no plane poll for a dead stream.
                                self.node.cpus.stream_mut(cpu).admit(0);
                                self.events.schedule(next, Ev::Cpu(CpuEvent::Step { cpu }));
                            } else {
                                let now_cyc = sh.time_to_cycle(next);
                                match self.traffic.poll(cpu, now_cyc) {
                                    piranha_traffic::Admission::Admit { extra_idle } => {
                                        self.node.cpus.stream_mut(cpu).admit(extra_idle);
                                        // The parked core's local clock froze
                                        // at the last commit; pull it forward
                                        // so the new transaction is costed
                                        // from its admission cycle.
                                        self.node.cpus.core_mut(cpu).align_cycle(now_cyc);
                                        self.events.schedule(next, Ev::Cpu(CpuEvent::Step { cpu }));
                                    }
                                    piranha_traffic::Admission::WaitUntil(c) => {
                                        // Idle until the next arrival. The
                                        // future Step keeps the event queue
                                        // non-empty, so the run loop's
                                        // deadlock check stays quiet.
                                        let at = sh.cycle_to_time(c).max(next);
                                        self.events.schedule(at, Ev::Cpu(CpuEvent::Step { cpu }));
                                    }
                                }
                            }
                            continue;
                        }
                    }
                    self.events.schedule(next, Ev::Cpu(CpuEvent::Step { cpu }));
                }
                CpuAction::Finished { .. } => self.unfinished -= 1,
            }
        }
        self.cpu_port = port;
    }

    /// Run `ev` through the node's engine complex (threading the
    /// directory view in) and queue the resulting actions.
    fn engine(&mut self, t: SimTime, ev: EngineEvent, q: &mut VecDeque<Item>) {
        let mut port = std::mem::take(&mut self.eng_port);
        {
            let Node { engines, mem, .. } = &mut self.node;
            let mut dirs = NodeDirs {
                banks: mem.banks_mut(),
            };
            engines.handle(t, ev, &mut dirs, &mut port);
        }
        q.extend(port.drain().map(|(_, a)| Item::Eng(a)));
        self.eng_port = port;
    }

    /// Run `ev` through one of the node's L2 banks and queue the
    /// resulting actions.
    fn bank(&mut self, t: SimTime, ev: CacheEvent, q: &mut VecDeque<Item>) {
        let mut port = std::mem::take(&mut self.bank_port);
        self.node.caches.handle(t, ev, (), &mut port);
        q.extend(port.drain().map(|(_, a)| Item::Bank(a)));
        self.bank_port = port;
    }

    /// Apply a work-list of bank/engine actions at time `t`.
    /// The work queue's allocation is reused across dispatches.
    pub(crate) fn apply(&mut self, sh: &LaneShared<'_>, t: SimTime, items: Vec<Item>) {
        let mut q = std::mem::take(&mut self.work);
        debug_assert!(q.is_empty());
        q.extend(items);
        while let Some(item) = q.pop_front() {
            match item {
                Item::Bank(a) => self.apply_bank_action(sh, t, a, &mut q),
                Item::Eng(a) => self.apply_engine_action(sh, t, a, &mut q),
            }
        }
        self.work = q;
    }

    fn apply_bank_action(
        &mut self,
        sh: &LaneShared<'_>,
        t: SimTime,
        a: BankAction,
        q: &mut VecDeque<Item>,
    ) {
        match a {
            BankAction::Grant {
                slot,
                line,
                state: _,
                version: _,
                source,
                upgraded,
            } => {
                let id = self
                    .outstanding
                    .remove(&(slot, line))
                    .unwrap_or_else(|| panic!("grant without outstanding request: {slot} {line}"));
                // Data fills occupy an ICS datapath; upgrades are
                // header-only.
                let size = if upgraded {
                    TransferSize::Header
                } else {
                    TransferSize::Line
                };
                self.node.ics.transfer(t, size, Lane::High);
                let wake = t + sh.reply_latency(source);
                self.events.schedule(
                    wake,
                    Ev::Cpu(CpuEvent::Fill {
                        cpu: slot.cpu().index(),
                        id,
                        source,
                    }),
                );
            }
            BankAction::Inval { .. } | BankAction::Downgrade { .. } => {
                self.node.ics.transfer(t, TransferSize::Header, Lane::High);
            }
            BankAction::VictimDisplaced {
                slot,
                line,
                state,
                version,
            } => {
                // Victim data crosses the ICS to its own bank.
                let size = if state == Mesi::Modified {
                    TransferSize::Line
                } else {
                    TransferSize::Header
                };
                self.node.ics.transfer(t, size, Lane::Low);
                let bank = self.bank_of(line);
                self.bank(
                    t,
                    CacheEvent {
                        bank,
                        ev: BankEvent::Victim {
                            slot,
                            line,
                            state,
                            version,
                        },
                    },
                    q,
                );
            }
            BankAction::ReadMem { line } => {
                let bank = self.bank_of(line);
                let acc = self.node.mem.access(bank, t, line);
                let mut ready = (acc.critical + sh.cfg.lat.mc_overhead).max(t);
                if self.faults.enabled() {
                    let cyc = sh.time_to_cycle(t);
                    if let Some(f) = self.faults.mem_fault(cyc) {
                        ready += self.scrub_line(sh, t, bank, line, f);
                    }
                }
                self.events
                    .schedule(ready, Ev::MemRead(MemEvent { bank, line }));
            }
            BankAction::WriteMem { line, version } => {
                let bank = self.bank_of(line);
                let nd = &mut self.node;
                nd.mem.write(bank, t, line, version);
                nd.ras.on_home_write(line, version);
            }
            BankAction::RemoteReq { slot: _, line, req } => {
                let home = NodeId(sh.home_of(line) as u16);
                self.engine(
                    t,
                    EngineEvent::Remote(RemoteIn::LocalReq { line, req, home }),
                    q,
                );
            }
            BankAction::RemoteWb { line, version } => {
                let home = NodeId(sh.home_of(line) as u16);
                self.engine(
                    t,
                    EngineEvent::Remote(RemoteIn::LocalWb {
                        line,
                        version,
                        home,
                    }),
                    q,
                );
            }
            BankAction::HomeInvalRemote { line } => {
                self.engine(t, EngineEvent::Home(HomeIn::LocalInvalRemotes { line }), q);
            }
            BankAction::HomeRecall { slot: _, line, req } => {
                self.engine(t, EngineEvent::Home(HomeIn::LocalRecall { line, req }), q);
            }
            BankAction::ExportReply {
                line,
                version,
                dirty,
                cached,
            } => {
                let ev = if sh.home_of(line) == self.index {
                    EngineEvent::Home(HomeIn::ExportReply {
                        line,
                        version,
                        dirty,
                        cached,
                    })
                } else {
                    EngineEvent::Remote(RemoteIn::ExportReply {
                        line,
                        version,
                        dirty,
                        cached,
                    })
                };
                self.engine(t, ev, q);
            }
        }
    }

    fn apply_engine_action(
        &mut self,
        _sh: &LaneShared<'_>,
        t: SimTime,
        a: EngineAction,
        q: &mut VecDeque<Item>,
    ) {
        match a {
            EngineAction::Send { to, msg } => {
                // Satellite hardening: a same-node "cross-node" message
                // would deliver with zero network latency and break the
                // conservative lookahead; the engines always short-cut
                // local traffic through the bank path instead, so this
                // firing means a protocol bug.
                assert_ne!(
                    to.index(),
                    self.index,
                    "protocol engine on node {} sent itself a network message; \
                     zero-latency self-sends violate the lookahead bound",
                    self.index
                );
                let kind = if msg.is_long() {
                    PacketKind::Long
                } else {
                    PacketKind::Short
                };
                let lane = msg.lane();
                // Buffered, not routed: the departure is held in the
                // lane's outbox until the quantum barrier, where all
                // lanes' traffic is merged in deterministic
                // (time, source, seq) order and routed together.
                self.outbox.push(
                    t,
                    Depart {
                        from: NodeId(self.index as u16),
                        to,
                        lane,
                        kind,
                        payload: msg,
                    },
                );
            }
            EngineAction::Export { line, excl } => {
                let bank = self.bank_of(line);
                self.bank(
                    t,
                    CacheEvent {
                        bank,
                        ev: BankEvent::Export { line, excl },
                    },
                    q,
                );
            }
            EngineAction::Fill {
                line,
                excl,
                version,
                source,
            } => {
                let bank = self.bank_of(line);
                let grant = if excl { Mesi::Exclusive } else { Mesi::Shared };
                self.bank(
                    t,
                    CacheEvent {
                        bank,
                        ev: BankEvent::RemoteFill {
                            line,
                            grant,
                            version,
                            source,
                        },
                    },
                    q,
                );
            }
            EngineAction::Purge { line } => {
                let bank = self.bank_of(line);
                self.bank(
                    t,
                    CacheEvent {
                        bank,
                        ev: BankEvent::InvalAll { line },
                    },
                    q,
                );
            }
            EngineAction::MemWrite { line, version } => {
                let bank = self.bank_of(line);
                let nd = &mut self.node;
                nd.mem.write(bank, t, line, version);
                nd.ras.on_home_write(line, version);
            }
        }
    }

    /// Apply an injected memory bit-flip and run the SEC-DED scrub
    /// (paper §2.7: memory protected by ECC, mirroring for what ECC
    /// cannot fix). Single-bit errors correct in place; double-bit
    /// errors escalate to a mirror-log restore when one exists. Returns
    /// the repair latency to add to the read's data-return time.
    fn scrub_line(
        &mut self,
        sh: &LaneShared<'_>,
        t: SimTime,
        bank: usize,
        line: LineAddr,
        f: piranha_faults::MemFault,
    ) -> Duration {
        let double = f.kind == FaultKind::MemFlipDouble;
        let bits: &[u32] = if double {
            &[f.bit_a, f.bit_b]
        } else {
            &[f.bit_a]
        };
        let outcome = self.node.mem.inject_and_scrub(bank, line, bits);
        let (corrected, penalty) = match outcome {
            Scrub::Clean(_) | Scrub::Corrected(_) => (true, self.faults.cfg().scrub_cycles),
            Scrub::Uncorrectable => {
                // SEC-DED gives up; restore from the mirror when one
                // exists. Either way the fault escalated past the
                // first-line ECC defence.
                let nd = &mut self.node;
                if let Some(v) = nd.ras.mirror_copy(line) {
                    nd.mem.set_version(bank, line, v);
                }
                (false, self.faults.cfg().failover_cycles)
            }
        };
        self.faults.note_recovery(f.kind, corrected, penalty, 0);
        self.probe.instant(
            TraceLevel::Spans,
            "faults",
            "mem.scrub",
            track_base(self.index) + TRACK_MEM + bank as u32,
            t.as_ps(),
            line.0,
        );
        sh.cfg.cpu_clock.cycles_dur(penalty)
    }
}

/// The machine-side half of cross-node delivery, used only at quantum
/// barriers (and between every serial event batch, where the barrier
/// degenerates to "immediately"): the shared fabric, its port, and the
/// lookahead bound the deliveries must respect. Routing happens on the
/// coordinator with all lanes parked, so ordinary `&mut` access is
/// enough — the fabric itself needs no locks.
pub(crate) struct NetPath<'a> {
    pub(crate) cfg: &'a SystemConfig,
    pub(crate) net: &'a mut Fabric<ProtoMsg>,
    pub(crate) port: &'a mut Port<Arrive<ProtoMsg>>,
    pub(crate) probe: &'a Probe,
    /// The per-pair lookahead matrix; every routed delivery is checked
    /// against its own pair's bound (hop distance × minimum per-hop
    /// latency), a strictly stronger check than the global quantum for
    /// any pair more than one hop apart.
    pub(crate) lookahead: &'a piranha_kernel::Lookahead,
}

impl NetPath<'_> {
    /// Route one buffered departure through the fabric, applying the
    /// *source* lane's link-fault hooks; returns the final delivery
    /// time, the source, and the (possibly retransmitted) payload.
    pub(crate) fn route(
        &mut self,
        faults: &mut FaultPlane,
        t: SimTime,
        d: Depart<ProtoMsg>,
    ) -> (SimTime, NodeId, ProtoMsg) {
        let (from, to, lane, kind) = (d.from, d.to, d.lane, d.kind);
        self.net.handle(t, d, (), self.port);
        let (first, arr) = {
            let mut it = self.port.drain();
            it.next().expect("one arrival per departure")
        };
        debug_assert!(self.port.is_empty());
        // The whole parallel scheme rests on no cross-node event
        // landing closer than the lookahead bound. The fabric charges
        // at least serialization + one hop *per hop of the shortest
        // path*, so the pair's bound — not just the fabric-wide minimum
        // — holds, with equality as the worst legal case.
        debug_assert!(
            first.since(t) >= self.lookahead.bound(from.index(), to.index()),
            "cross-node delivery {from}->{to} took {:?} < its pair lookahead bound {:?}",
            first.since(t),
            self.lookahead.bound(from.index(), to.index())
        );
        self.probe.span(
            TraceLevel::Spans,
            "net",
            "send",
            track_base(from.index()) + TRACK_NET,
            t.as_ps(),
            first.since(t).as_ps(),
            arr.payload.line().0,
        );
        let mut arrive = first;
        let mut payload = arr.payload;
        if faults.enabled() {
            let cyc = time_to_cycle(self.cfg, t);
            if let Some(f) = faults.packet_fault(cyc) {
                payload = self.retransmit(faults, t, from, to, lane, kind, payload, f, &mut arrive);
            }
            if let Some(stall) = faults.router_stall(cyc) {
                // A transient queue stall: the hop completes late
                // but nothing is lost.
                arrive += self.cfg.cpu_clock.cycles_dur(stall);
                faults.note_recovery(FaultKind::RouterStall, true, stall, 0);
                self.probe.instant(
                    TraceLevel::Spans,
                    "faults",
                    "router.stall",
                    track_base(from.index()) + TRACK_NET,
                    t.as_ps(),
                    stall,
                );
            }
        }
        (arrive, from, payload)
    }

    /// Drive link-level recovery of one faulted packet send (paper
    /// §2.6.1/§2.7: CRC-protected links). Each failed attempt costs a
    /// NACK plus exponentially backed-off delay before the retransmit
    /// re-walks the network; the packet that finally lands is clean.
    /// Escalation (budget blown) still delivers — the NAK-free protocol
    /// cannot tolerate a silently dropped message — but is charged to
    /// the availability ledger as escalated.
    #[allow(clippy::too_many_arguments)]
    fn retransmit(
        &mut self,
        faults: &mut FaultPlane,
        t: SimTime,
        from: NodeId,
        to: NodeId,
        lane: Lane,
        kind: PacketKind,
        mut payload: ProtoMsg,
        f: piranha_faults::PacketFault,
        arrive: &mut SimTime,
    ) -> ProtoMsg {
        let first_cycle = time_to_cycle(self.cfg, t);
        let attempts = f.failed_attempts.min(faults.cfg().retry_budget + 1);
        if f.kind == FaultKind::PacketCorrupt {
            // Genuine detection, not assumption: corrupt the encoded
            // payload and check the link CRC actually flags it.
            let wire = format!("{payload:?}").into_bytes();
            let good = crc32(&wire);
            for attempt in 1..=attempts {
                let mut damaged = wire.clone();
                flip_bit(&mut damaged, f.flip_bit.wrapping_add(attempt));
                debug_assert_ne!(
                    crc32(&damaged),
                    good,
                    "link CRC must detect a single-bit flip"
                );
            }
        }
        for attempt in 1..=attempts {
            let delay = faults.cfg().retransmit_delay_cycles(attempt);
            let at = *arrive + self.cfg.cpu_clock.cycles_dur(delay);
            let (t2, p2) = self
                .net
                .resend(at, Packet::new(from, to, lane, kind, payload));
            *arrive = t2.max(at);
            payload = p2.payload;
        }
        let corrected = f.failed_attempts <= faults.cfg().retry_budget;
        let mttr = time_to_cycle(self.cfg, *arrive).saturating_sub(first_cycle);
        faults.note_recovery(f.kind, corrected, mttr, attempts as u64);
        self.probe.instant(
            TraceLevel::Spans,
            "faults",
            "packet.retransmit",
            track_base(from.index()) + TRACK_NET,
            t.as_ps(),
            attempts as u64,
        );
        payload
    }
}
