//! Event dispatch: routing between the component adapters.
//!
//! This is the only layer that knows the machine's topology of
//! components. Each arm of [`Machine::dispatch`] hands the event to the
//! owning adapter's `Component::handle` and routes the actions that come
//! back out of its port — it contains **no subsystem logic** of its own.
//! The two cross-cutting concerns the paper treats as system-level —
//! fault injection/recovery (§2.7) and observability — are applied here,
//! uniformly at the port boundary, so no subsystem crate knows they
//! exist.

use std::collections::VecDeque;

use piranha_cache::{BankAction, BankEvent, CacheEvent, Mesi, Slot};
use piranha_cpu::{CpuAction, CpuCtx, CpuEvent};
use piranha_faults::FaultKind;
use piranha_ics::TransferSize;
use piranha_kernel::Component;
use piranha_mem::{MemEvent, Scrub};
use piranha_net::{crc32, flip_bit, Depart, Packet, PacketKind};
use piranha_probe::TraceLevel;
use piranha_protocol::coherence::occupancy_cycles;
use piranha_protocol::{EngineAction, EngineEvent, HomeIn, ProtoMsg, RemoteIn};
use piranha_types::{CpuId, Duration, Lane, LineAddr, NodeId, SimTime};

use crate::machine::Machine;
use crate::node::{Node, NodeDirs};
use crate::wiring::{track_base, TRACK_BANK, TRACK_HOME, TRACK_MEM, TRACK_NET, TRACK_REMOTE};

/// An event on the machine's scheduler. The handling node is the
/// scheduler's own dimension, so events name only the in-node target.
#[derive(Debug, Clone)]
pub(crate) enum Ev {
    /// An event for the node's CPU cluster (step or fill).
    Cpu(CpuEvent),
    /// An event for one of the node's L2 banks.
    Bank(CacheEvent),
    /// A memory read's critical word is available.
    MemRead(MemEvent),
    /// A protocol message arrives at the node.
    NetMsg { from: NodeId, msg: ProtoMsg },
}

/// A unit of synchronous follow-on work inside one dispatch.
pub(crate) enum Item {
    Bank(BankAction),
    Eng(EngineAction),
}

impl Machine {
    pub(crate) fn dispatch(&mut self, t: SimTime, node: usize, ev: Ev) {
        match ev {
            Ev::Cpu(ev) => self.cpu_event(t, node, ev),
            Ev::Bank(ce) => {
                self.probe.span(
                    TraceLevel::Spans,
                    "cache",
                    "bank.lookup",
                    track_base(node) + TRACK_BANK + ce.bank as u32,
                    t.as_ps(),
                    self.cfg.lat.bank.as_ps(),
                    0,
                );
                let mut port = std::mem::take(&mut self.bank_port);
                self.nodes[node].caches.handle(t, ce, (), &mut port);
                let items: Vec<Item> = port.drain().map(|(_, a)| Item::Bank(a)).collect();
                self.bank_port = port;
                self.apply(t, node, items);
            }
            Ev::MemRead(me) => {
                self.probe.instant(
                    TraceLevel::Spans,
                    "mem",
                    "dram.read",
                    track_base(node) + TRACK_MEM + me.bank as u32,
                    t.as_ps(),
                    me.line.0,
                );
                // The memory array reads version/directory at data-return
                // time, so intervening writes are observed; its MemData
                // goes straight back to the requesting bank.
                let mut mport = std::mem::take(&mut self.mem_port);
                self.nodes[node].mem.handle(t, me, (), &mut mport);
                let mut bport = std::mem::take(&mut self.bank_port);
                for (_, d) in mport.drain() {
                    self.nodes[node].caches.handle(
                        t,
                        CacheEvent {
                            bank: d.bank,
                            ev: BankEvent::MemData {
                                line: d.line,
                                version: d.version,
                                remote: d.remote,
                            },
                        },
                        (),
                        &mut bport,
                    );
                }
                self.mem_port = mport;
                let items: Vec<Item> = bport.drain().map(|(_, a)| Item::Bank(a)).collect();
                self.bank_port = bport;
                self.apply(t, node, items);
            }
            Ev::NetMsg { from, msg } => {
                let line = msg.line();
                let kind = match &msg {
                    ProtoMsg::Req { .. } => "req",
                    ProtoMsg::Reply { .. } => "reply",
                    ProtoMsg::Fwd { .. } => "fwd",
                    ProtoMsg::Inval { .. } => "inval",
                    ProtoMsg::InvalAck { .. } | ProtoMsg::WbAck { .. } => "ack",
                    _ => "wb",
                };
                let is_home = self.home_of(line) == node;
                let mut pe_cycles = occupancy_cycles(kind);
                if self.faults.enabled() {
                    let cyc = self.time_to_cycle(t);
                    if let Some(h) = self.faults.engine_hiccup(cyc) {
                        // The engine's watchdog expires and the handler
                        // replays from its TSRF-recorded inputs: extra
                        // occupancy, same architectural outcome (the
                        // state machine only commits at completion).
                        let extra = self.nodes[node].engines.replay(kind);
                        pe_cycles += extra;
                        self.faults.note_recovery(h.kind, true, extra, 0);
                        self.probe.instant(
                            TraceLevel::Spans,
                            "faults",
                            "engine.replay",
                            track_base(node) + if is_home { TRACK_HOME } else { TRACK_REMOTE },
                            t.as_ps(),
                            extra,
                        );
                    }
                }
                let occ = self.cfg.lat.pe_instr.times(pe_cycles);
                self.probe.span(
                    TraceLevel::Spans,
                    "protocol",
                    if is_home { "home" } else { "remote" },
                    track_base(node) + if is_home { TRACK_HOME } else { TRACK_REMOTE },
                    t.as_ps(),
                    occ.as_ps(),
                    line.0,
                );
                let mut port = std::mem::take(&mut self.eng_port);
                {
                    let nd = &mut self.nodes[node];
                    nd.engines.acquire(is_home, t, occ);
                    let Node { engines, mem, .. } = nd;
                    let mut dirs = NodeDirs {
                        banks: mem.banks_mut(),
                    };
                    let ev = if is_home {
                        EngineEvent::Home(HomeIn::Msg { from, msg })
                    } else {
                        EngineEvent::Remote(RemoteIn::Msg { from, msg })
                    };
                    engines.handle(t, ev, &mut dirs, &mut port);
                }
                let items: Vec<Item> = port.drain().map(|(_, a)| Item::Eng(a)).collect();
                self.eng_port = port;
                self.apply(t, node, items);
            }
        }
    }

    /// Deliver one event to the node's CPU cluster and route the
    /// resulting actions: memory requests toward the L2 (via the ICS and
    /// the bank occupancy server), reschedules onto the scheduler, and
    /// completions into the run loop's `unfinished` count.
    fn cpu_event(&mut self, t: SimTime, node: usize, ev: CpuEvent) {
        let (cpu, is_step) = match ev {
            CpuEvent::Step { cpu } => (cpu, true),
            CpuEvent::Fill { cpu, id, .. } => {
                self.probe.instant(
                    TraceLevel::Verbose,
                    "cpu",
                    "fill",
                    track_base(node) + cpu as u32,
                    t.as_ps(),
                    id,
                );
                (cpu, false)
            }
        };
        let fill_cycle = self.time_to_cycle(t);
        let mut port = std::mem::take(&mut self.cpu_port);
        let (retired, cyc_delta) = {
            let Machine {
                nodes, versions, ..
            } = self;
            let Node {
                cpus, caches, sc, ..
            } = &mut nodes[node];
            let before = cpus.core(cpu).stats().instrs;
            let cyc_before = cpus.core(cpu).now_cycle();
            let ctx = CpuCtx {
                l1s: caches.l1s_mut(),
                versions,
                enabled: sc.cpu_enabled(CpuId(cpu as u8)),
                fill_cycle,
            };
            cpus.handle(t, ev, ctx, &mut port);
            (
                cpus.core(cpu).stats().instrs - before,
                cpus.core(cpu).now_cycle() - cyc_before,
            )
        };
        self.instrs_retired += retired;
        if is_step && cyc_delta > 0 {
            self.probe.span(
                TraceLevel::Spans,
                "cpu",
                "step",
                track_base(node) + cpu as u32,
                t.as_ps(),
                self.cfg.cpu_clock.cycles_dur(cyc_delta).as_ps(),
                retired,
            );
        }
        for (_, act) in port.drain() {
            match act {
                CpuAction::Issue { cpu, at_cycle, req } => {
                    let issue = self.cycle_to_time(at_cycle).max(t);
                    // Request message over the ICS (header) + path latency.
                    let tics =
                        self.nodes[node]
                            .ics
                            .transfer(issue, TransferSize::Header, Lane::Low);
                    let arrive = (issue + self.cfg.lat.req).max(tics);
                    let bank = self.bank_of(node, req.line);
                    let exec = self.nodes[node]
                        .caches
                        .acquire(bank, arrive, self.cfg.lat.bank);
                    let slot = Slot::new(CpuId(cpu as u8), req.kind);
                    let prev = self.outstanding.insert((node, slot, req.line), req.id);
                    assert!(
                        prev.is_none(),
                        "duplicate outstanding request for {slot} {}",
                        req.line
                    );
                    let home_local = self.home_of(req.line) == node;
                    self.events.schedule(
                        node,
                        exec.max(t),
                        Ev::Bank(CacheEvent {
                            bank,
                            ev: BankEvent::Miss {
                                slot,
                                req: req.req,
                                line: req.line,
                                home_local,
                                store_version: req.store_version,
                            },
                        }),
                    );
                }
                CpuAction::Wake { cpu, at_cycle } => {
                    let next = self.cycle_to_time(at_cycle).max(t);
                    self.events
                        .schedule(node, next, Ev::Cpu(CpuEvent::Step { cpu }));
                }
                CpuAction::Finished { .. } => self.unfinished -= 1,
            }
        }
        self.cpu_port = port;
    }

    /// Run `ev` through the node's engine complex (threading the
    /// directory view in) and queue the resulting actions.
    fn engine(&mut self, t: SimTime, n: usize, ev: EngineEvent, q: &mut VecDeque<(usize, Item)>) {
        let mut port = std::mem::take(&mut self.eng_port);
        {
            let Node { engines, mem, .. } = &mut self.nodes[n];
            let mut dirs = NodeDirs {
                banks: mem.banks_mut(),
            };
            engines.handle(t, ev, &mut dirs, &mut port);
        }
        q.extend(port.drain().map(|(_, a)| (n, Item::Eng(a))));
        self.eng_port = port;
    }

    /// Run `ev` through one of the node's L2 banks and queue the
    /// resulting actions.
    fn bank(&mut self, t: SimTime, n: usize, ev: CacheEvent, q: &mut VecDeque<(usize, Item)>) {
        let mut port = std::mem::take(&mut self.bank_port);
        self.nodes[n].caches.handle(t, ev, (), &mut port);
        q.extend(port.drain().map(|(_, a)| (n, Item::Bank(a))));
        self.bank_port = port;
    }

    /// Apply a work-list of bank/engine actions at time `t` on `node`.
    /// The work queue's allocation is reused across dispatches.
    pub(crate) fn apply(&mut self, t: SimTime, origin: usize, items: Vec<Item>) {
        let mut q = std::mem::take(&mut self.work);
        debug_assert!(q.is_empty());
        q.extend(items.into_iter().map(|i| (origin, i)));
        while let Some((n, item)) = q.pop_front() {
            match item {
                Item::Bank(a) => self.apply_bank_action(t, n, a, &mut q),
                Item::Eng(a) => self.apply_engine_action(t, n, a, &mut q),
            }
        }
        self.work = q;
    }

    fn apply_bank_action(
        &mut self,
        t: SimTime,
        n: usize,
        a: BankAction,
        q: &mut VecDeque<(usize, Item)>,
    ) {
        match a {
            BankAction::Grant {
                slot,
                line,
                state: _,
                version: _,
                source,
                upgraded,
            } => {
                let id = self
                    .outstanding
                    .remove(&(n, slot, line))
                    .unwrap_or_else(|| panic!("grant without outstanding request: {slot} {line}"));
                // Data fills occupy an ICS datapath; upgrades are
                // header-only.
                let size = if upgraded {
                    TransferSize::Header
                } else {
                    TransferSize::Line
                };
                self.nodes[n].ics.transfer(t, size, Lane::High);
                let wake = t + self.reply_latency(source);
                self.events.schedule(
                    n,
                    wake,
                    Ev::Cpu(CpuEvent::Fill {
                        cpu: slot.cpu().index(),
                        id,
                        source,
                    }),
                );
            }
            BankAction::Inval { .. } | BankAction::Downgrade { .. } => {
                self.nodes[n]
                    .ics
                    .transfer(t, TransferSize::Header, Lane::High);
            }
            BankAction::VictimDisplaced {
                slot,
                line,
                state,
                version,
            } => {
                // Victim data crosses the ICS to its own bank.
                let size = if state == Mesi::Modified {
                    TransferSize::Line
                } else {
                    TransferSize::Header
                };
                self.nodes[n].ics.transfer(t, size, Lane::Low);
                let bank = self.bank_of(n, line);
                self.bank(
                    t,
                    n,
                    CacheEvent {
                        bank,
                        ev: BankEvent::Victim {
                            slot,
                            line,
                            state,
                            version,
                        },
                    },
                    q,
                );
            }
            BankAction::ReadMem { line } => {
                let bank = self.bank_of(n, line);
                let acc = self.nodes[n].mem.access(bank, t, line);
                let mut ready = (acc.critical + self.cfg.lat.mc_overhead).max(t);
                if self.faults.enabled() {
                    let cyc = self.time_to_cycle(t);
                    if let Some(f) = self.faults.mem_fault(cyc) {
                        ready += self.scrub_line(t, n, bank, line, f);
                    }
                }
                self.events
                    .schedule(n, ready, Ev::MemRead(MemEvent { bank, line }));
            }
            BankAction::WriteMem { line, version } => {
                let bank = self.bank_of(n, line);
                let nd = &mut self.nodes[n];
                nd.mem.write(bank, t, line, version);
                nd.ras.on_home_write(line, version);
            }
            BankAction::RemoteReq { slot: _, line, req } => {
                let home = NodeId(self.home_of(line) as u16);
                self.engine(
                    t,
                    n,
                    EngineEvent::Remote(RemoteIn::LocalReq { line, req, home }),
                    q,
                );
            }
            BankAction::RemoteWb { line, version } => {
                let home = NodeId(self.home_of(line) as u16);
                self.engine(
                    t,
                    n,
                    EngineEvent::Remote(RemoteIn::LocalWb {
                        line,
                        version,
                        home,
                    }),
                    q,
                );
            }
            BankAction::HomeInvalRemote { line } => {
                self.engine(
                    t,
                    n,
                    EngineEvent::Home(HomeIn::LocalInvalRemotes { line }),
                    q,
                );
            }
            BankAction::HomeRecall { slot: _, line, req } => {
                self.engine(
                    t,
                    n,
                    EngineEvent::Home(HomeIn::LocalRecall { line, req }),
                    q,
                );
            }
            BankAction::ExportReply {
                line,
                version,
                dirty,
                cached,
            } => {
                let ev = if self.home_of(line) == n {
                    EngineEvent::Home(HomeIn::ExportReply {
                        line,
                        version,
                        dirty,
                        cached,
                    })
                } else {
                    EngineEvent::Remote(RemoteIn::ExportReply {
                        line,
                        version,
                        dirty,
                        cached,
                    })
                };
                self.engine(t, n, ev, q);
            }
        }
    }

    fn apply_engine_action(
        &mut self,
        t: SimTime,
        n: usize,
        a: EngineAction,
        q: &mut VecDeque<(usize, Item)>,
    ) {
        match a {
            EngineAction::Send { to, msg } => {
                let kind = if msg.is_long() {
                    PacketKind::Long
                } else {
                    PacketKind::Short
                };
                let lane = msg.lane();
                let mut port = std::mem::take(&mut self.net_port);
                self.net.handle(
                    t,
                    Depart {
                        from: NodeId(n as u16),
                        to,
                        lane,
                        kind,
                        payload: msg,
                    },
                    (),
                    &mut port,
                );
                let (first, arr) = {
                    let mut it = port.drain();
                    it.next().expect("one arrival per departure")
                };
                debug_assert!(port.is_empty());
                self.net_port = port;
                self.probe.span(
                    TraceLevel::Spans,
                    "net",
                    "send",
                    track_base(n) + TRACK_NET,
                    t.as_ps(),
                    first.since(t).as_ps(),
                    arr.payload.line().0,
                );
                let mut arrive = first;
                let mut payload = arr.payload;
                if self.faults.enabled() {
                    let cyc = self.time_to_cycle(t);
                    if let Some(f) = self.faults.packet_fault(cyc) {
                        payload = self.retransmit(t, n, to, lane, kind, payload, f, &mut arrive);
                    }
                    if let Some(stall) = self.faults.router_stall(cyc) {
                        // A transient queue stall: the hop completes late
                        // but nothing is lost.
                        arrive += self.cfg.cpu_clock.cycles_dur(stall);
                        self.faults
                            .note_recovery(FaultKind::RouterStall, true, stall, 0);
                        self.probe.instant(
                            TraceLevel::Spans,
                            "faults",
                            "router.stall",
                            track_base(n) + TRACK_NET,
                            t.as_ps(),
                            stall,
                        );
                    }
                }
                self.events.schedule(
                    to.index(),
                    arrive,
                    Ev::NetMsg {
                        from: NodeId(n as u16),
                        msg: payload,
                    },
                );
            }
            EngineAction::Export { line, excl } => {
                let bank = self.bank_of(n, line);
                self.bank(
                    t,
                    n,
                    CacheEvent {
                        bank,
                        ev: BankEvent::Export { line, excl },
                    },
                    q,
                );
            }
            EngineAction::Fill {
                line,
                excl,
                version,
                source,
            } => {
                let bank = self.bank_of(n, line);
                let grant = if excl { Mesi::Exclusive } else { Mesi::Shared };
                self.bank(
                    t,
                    n,
                    CacheEvent {
                        bank,
                        ev: BankEvent::RemoteFill {
                            line,
                            grant,
                            version,
                            source,
                        },
                    },
                    q,
                );
            }
            EngineAction::Purge { line } => {
                let bank = self.bank_of(n, line);
                self.bank(
                    t,
                    n,
                    CacheEvent {
                        bank,
                        ev: BankEvent::InvalAll { line },
                    },
                    q,
                );
            }
            EngineAction::MemWrite { line, version } => {
                let bank = self.bank_of(n, line);
                let nd = &mut self.nodes[n];
                nd.mem.write(bank, t, line, version);
                nd.ras.on_home_write(line, version);
            }
        }
    }

    /// Drive link-level recovery of one faulted packet send (paper
    /// §2.6.1/§2.7: CRC-protected links). Each failed attempt costs a
    /// NACK plus exponentially backed-off delay before the retransmit
    /// re-walks the network; the packet that finally lands is clean.
    /// Escalation (budget blown) still delivers — the NAK-free protocol
    /// cannot tolerate a silently dropped message — but is charged to
    /// the availability ledger as escalated.
    #[allow(clippy::too_many_arguments)]
    fn retransmit(
        &mut self,
        t: SimTime,
        n: usize,
        to: NodeId,
        lane: Lane,
        kind: PacketKind,
        mut payload: ProtoMsg,
        f: piranha_faults::PacketFault,
        arrive: &mut SimTime,
    ) -> ProtoMsg {
        let first_cycle = self.time_to_cycle(t);
        let attempts = f.failed_attempts.min(self.faults.cfg().retry_budget + 1);
        if f.kind == FaultKind::PacketCorrupt {
            // Genuine detection, not assumption: corrupt the encoded
            // payload and check the link CRC actually flags it.
            let wire = format!("{payload:?}").into_bytes();
            let good = crc32(&wire);
            for attempt in 1..=attempts {
                let mut damaged = wire.clone();
                flip_bit(&mut damaged, f.flip_bit.wrapping_add(attempt));
                debug_assert_ne!(
                    crc32(&damaged),
                    good,
                    "link CRC must detect a single-bit flip"
                );
            }
        }
        for attempt in 1..=attempts {
            let delay = self.faults.cfg().retransmit_delay_cycles(attempt);
            let at = *arrive + self.cfg.cpu_clock.cycles_dur(delay);
            let (t2, p2) = self
                .net
                .resend(at, Packet::new(NodeId(n as u16), to, lane, kind, payload));
            *arrive = t2.max(at);
            payload = p2.payload;
        }
        let corrected = f.failed_attempts <= self.faults.cfg().retry_budget;
        let mttr = self.time_to_cycle(*arrive).saturating_sub(first_cycle);
        self.faults
            .note_recovery(f.kind, corrected, mttr, attempts as u64);
        self.probe.instant(
            TraceLevel::Spans,
            "faults",
            "packet.retransmit",
            track_base(n) + TRACK_NET,
            t.as_ps(),
            attempts as u64,
        );
        payload
    }

    /// Apply an injected memory bit-flip and run the SEC-DED scrub
    /// (paper §2.7: memory protected by ECC, mirroring for what ECC
    /// cannot fix). Single-bit errors correct in place; double-bit
    /// errors escalate to a mirror-log restore when one exists. Returns
    /// the repair latency to add to the read's data-return time.
    fn scrub_line(
        &mut self,
        t: SimTime,
        n: usize,
        bank: usize,
        line: LineAddr,
        f: piranha_faults::MemFault,
    ) -> Duration {
        let double = f.kind == FaultKind::MemFlipDouble;
        let bits: &[u32] = if double {
            &[f.bit_a, f.bit_b]
        } else {
            &[f.bit_a]
        };
        let outcome = self.nodes[n].mem.inject_and_scrub(bank, line, bits);
        let (corrected, penalty) = match outcome {
            Scrub::Clean(_) | Scrub::Corrected(_) => (true, self.faults.cfg().scrub_cycles),
            Scrub::Uncorrectable => {
                // SEC-DED gives up; restore from the mirror when one
                // exists. Either way the fault escalated past the
                // first-line ECC defence.
                let nd = &mut self.nodes[n];
                if let Some(v) = nd.ras.mirror_copy(line) {
                    nd.mem.set_version(bank, line, v);
                }
                (false, self.faults.cfg().failover_cycles)
            }
        };
        self.faults.note_recovery(f.kind, corrected, penalty, 0);
        self.probe.instant(
            TraceLevel::Spans,
            "faults",
            "mem.scrub",
            track_base(n) + TRACK_MEM + bank as u32,
            t.as_ps(),
            line.0,
        );
        self.cfg.cpu_clock.cycles_dur(penalty)
    }
}
