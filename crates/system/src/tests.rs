//! Machine-level smoke, determinism, fault, and I/O-node tests.

use piranha_types::NodeId;
use piranha_workloads::{SynthConfig, Workload};

use crate::config::SystemConfig;
use crate::machine::Machine;
use crate::wiring::build_topology;

#[test]
fn single_cpu_synthetic_smoke() {
    let mut cfg = SystemConfig::piranha_p1();
    cfg.cpu_quantum = 500;
    let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::light()));
    let r = m.run(2_000, 20_000);
    assert!(r.total_instrs() >= 20_000);
    assert!(r.throughput_ipns() > 0.0);
    m.check_coherence();
}

#[test]
fn eight_cpu_sharing_smoke() {
    let mut cfg = SystemConfig::piranha_p8();
    cfg.cpu_quantum = 500;
    let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
    let r = m.run(2_000, 10_000);
    assert!(r.total_instrs() >= 80_000);
    let (hit, fwd, miss) = r.l1_miss_breakdown();
    assert!(hit + fwd + miss > 0.99);
    m.check_coherence();
}

#[test]
fn ooo_smoke() {
    let mut cfg = SystemConfig::ooo();
    cfg.cpu_quantum = 500;
    let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::light()));
    let r = m.run(2_000, 20_000);
    assert!(r.total_instrs() >= 20_000);
}

#[test]
fn two_chip_coherence_smoke() {
    let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
    cfg.cpu_quantum = 500;
    let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
    let r = m.run(1_000, 5_000);
    assert!(r.total_instrs() >= 20_000);
    let merged = r.merged();
    assert!(
        merged.fills[3] + merged.fills[4] > 0,
        "multi-chip run must see remote fills"
    );
}

#[test]
fn determinism() {
    let run = || {
        let mut cfg = SystemConfig::piranha_pn(2);
        cfg.cpu_quantum = 500;
        let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
        let r = m.run(1_000, 5_000);
        (r.total_instrs(), r.window, m.now())
    };
    assert_eq!(run(), run());
}

#[test]
fn faulted_run_recovers_and_stays_deterministic() {
    let run = || {
        let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
        cfg.cpu_quantum = 500;
        cfg.faults = piranha_faults::FaultConfig::seeded(42, 2e-3);
        let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
        let r = m.run(1_000, 5_000);
        assert!(r.availability.is_consistent());
        m.check_coherence();
        (r.fingerprint(), r.availability.injected)
    };
    let (fp_a, inj_a) = run();
    let (fp_b, inj_b) = run();
    assert!(inj_a > 0, "rate 2e-3 over a multichip run must inject");
    assert_eq!((fp_a, inj_a), (fp_b, inj_b), "same seed, same run");
}

#[test]
fn zero_rate_fault_config_is_bit_identical_to_disabled() {
    let run = |faults: piranha_faults::FaultConfig| {
        let mut cfg = SystemConfig::piranha_pn(2);
        cfg.cpu_quantum = 500;
        cfg.faults = faults;
        let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
        m.run(1_000, 5_000).fingerprint()
    };
    let off = run(piranha_faults::FaultConfig::default());
    let zero = run(piranha_faults::FaultConfig {
        seed: 99,
        ..piranha_faults::FaultConfig::default()
    });
    assert_eq!(off, zero, "a zero-rate plane draws nothing, costs nothing");
}

#[test]
fn scripted_faults_fire_and_are_ledgered() {
    let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
    cfg.cpu_quantum = 500;
    cfg.faults = piranha_faults::FaultConfig::scripted(
        "corrupt@50, flap@60, stall@80, hiccup@100, flip1@200, flip2@300",
    )
    .unwrap();
    let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
    let r = m.run(1_000, 5_000);
    assert_eq!(r.availability.injected, 6, "all six scripted events fired");
    assert!(r.availability.is_consistent());
    assert_eq!(m.fault_plane().unfired_scripted(), 0);
    assert!(
        r.availability.escalated >= 1,
        "the double-bit flip escalates past ECC"
    );
    assert!(r.availability.retransmits >= 2, "corrupt + flap retransmit");
}

/// An I/O node participates fully in global coherence: its DMA
/// traffic reaches memory homed on processing nodes and vice versa.
#[test]
fn io_node_is_a_coherence_citizen() {
    let cfg = SystemConfig::piranha_pn(2).with_io_nodes(1);
    let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
    m.run_until_total(120_000);
    m.check_coherence();
    // The I/O node's CPU (last in node-major order) made progress.
    let stats = m.cpu_stats();
    let io_cpu = stats.last().unwrap();
    assert!(io_cpu.instrs > 1_000, "I/O CPU ran its driver stream");
    let remote: u64 = io_cpu.fills[3] + io_cpu.fills[4];
    assert!(remote > 0, "I/O traffic crossed the interconnect");
}

/// Dual-homed I/O links: the custom topology keeps every node
/// reachable and within the channel budget.
#[test]
fn io_topology_shape() {
    let t = build_topology(piranha_net::TopologyKind::Auto, 4, 2);
    assert_eq!(t.nodes(), 6);
    assert!(
        t.max_degree() <= 5,
        "processing degree 3 + up to 2 io links"
    );
    assert_eq!(
        t.neighbours(NodeId(4)).len(),
        2,
        "io nodes have two channels"
    );
}

/// Regression: the auto mesh is exact. `mesh(w, ceil(total/w))` used to
/// round a 7-lane machine up to a 9-node 3×3 mesh — two phantom nodes
/// the machine doesn't have, silently widening the lookahead matrix.
#[test]
fn auto_mesh_node_count_is_exact() {
    use piranha_net::TopologyKind;
    for total in 6..=16 {
        let t = build_topology(TopologyKind::Auto, total, 0);
        assert_eq!(t.nodes(), total, "{total} lanes must get {total} nodes");
        assert_eq!(t.hosts(), total);
    }
}

/// Every explicit topology kind wires every lane count it's offered:
/// node counts are exact (fat tree aside, whose extra nodes are
/// documented phantom switches) and host pair bounds stay strictly
/// positive — the conservative engine's lookahead precondition.
#[test]
fn explicit_topologies_cover_sweep_sizes() {
    use piranha_net::TopologyKind;
    for kind in [
        TopologyKind::Ring,
        TopologyKind::Mesh,
        TopologyKind::Torus,
        TopologyKind::FatTree,
    ] {
        for total in [2usize, 7, 16, 32, 64] {
            let t = build_topology(kind, total, 0);
            assert_eq!(t.hosts(), total, "{kind:?} over {total} lanes");
            if kind == TopologyKind::FatTree {
                assert!(t.nodes() >= total);
            } else {
                assert_eq!(t.nodes(), total);
            }
            let net: piranha_net::Network<u32> =
                piranha_net::Network::new(t, piranha_net::NetworkConfig::paper_default());
            let bounds = net.host_pair_bounds();
            assert_eq!(bounds.len(), total.max(2));
            for (s, row) in bounds.iter().enumerate() {
                for (d, b) in row.iter().enumerate() {
                    assert_eq!(
                        *b == piranha_types::Duration::ZERO,
                        s == d,
                        "{kind:?}/{total}: bound {s}->{d}"
                    );
                }
            }
        }
    }
}

/// The system controller can stop and restart cores mid-run.
#[test]
fn sc_stops_and_restarts_cores() {
    let cfg = SystemConfig::piranha_pn(2);
    let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::light()));
    m.run_until_total(20_000);
    m.stop_cpu(0, 1);
    let before = m.cpu_stats()[1].instrs;
    m.run_until_total(m.total_instrs() + 20_000);
    let after = m.cpu_stats()[1].instrs;
    assert!(
        after - before < 4_000,
        "stopped CPU must not keep executing: {before} -> {after}"
    );
    m.start_cpu(0, 1);
    m.run_until_total(m.total_instrs() + 20_000);
    assert!(m.cpu_stats()[1].instrs > after, "restarted CPU resumes");
    assert!(m.system_controller(0).packets_handled() > 0);
}

/// A sampled single-chip run: the machine alternates regimes, reaches
/// the budget, and reports an estimate with the detailed share small.
#[test]
fn sampled_run_single_chip_smoke() {
    let mut cfg = SystemConfig::piranha_p8();
    cfg.cpu_quantum = 500;
    let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
    let sample = piranha_sample::SampleConfig {
        warmup: 2_000,
        period: 10_000,
        detail_warmup: 200,
        window: 1_000,
        min_windows: 4,
        max_windows: 16,
        target_rel_ci: None,
    };
    let r = m.run_sampled(&sample, Some(60_000));
    let est = r.sample.as_ref().expect("sampled run carries an estimate");
    // Fixed mode samples every period across the whole budget: 2k
    // warmup, then one window per 10k-instruction period within the
    // 60k-per-CPU budget.
    assert_eq!(est.windows, 6);
    assert!(est.cpi_mean > 0.5, "CPI estimate sane: {}", est.cpi_mean);
    assert!(
        est.detailed_fraction < 0.25,
        "detailed share stays small: {}",
        est.detailed_fraction
    );
    assert!(m.total_instrs() >= 8 * 60_000);
    let tally = m.sample_tally();
    assert_eq!(tally.windows, 6);
    // In-order cores warm at exactly one cycle per instruction, so the
    // warming-cycle tally equals the warmed instruction count.
    assert_eq!(tally.warming_cycles, est.warmed_instrs);
    assert!(tally.detailed_cycles > 0);
    m.check_coherence();
}

/// Multi-chip sampled run keeps coherence across the regime switches
/// and sees remote traffic during both regimes.
#[test]
fn sampled_run_multichip_smoke() {
    let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
    cfg.cpu_quantum = 500;
    let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
    let sample = piranha_sample::SampleConfig {
        warmup: 1_000,
        period: 5_000,
        detail_warmup: 100,
        window: 500,
        min_windows: 3,
        max_windows: 8,
        target_rel_ci: None,
    };
    let r = m.run_sampled(&sample, Some(25_000));
    let est = r.sample.as_ref().unwrap();
    assert!(est.windows >= 3);
    let merged = r.merged();
    assert!(
        merged.fills[3] + merged.fills[4] > 0,
        "measured windows see remote fills"
    );
    m.check_coherence();
}

/// Open-loop traffic end to end on one chip: bounded OLTP streams run
/// to completion under plane admission, the conservation ledger holds,
/// and every committed transaction has a recorded latency.
#[test]
fn open_loop_traffic_single_chip_smoke() {
    let mut cfg = SystemConfig::piranha_pn(2);
    cfg.cpu_quantum = 500;
    cfg.traffic = piranha_traffic::TrafficConfig::poisson(200.0);
    let oltp = piranha_workloads::OltpConfig {
        txn_limit: 20,
        ..piranha_workloads::OltpConfig::paper_default()
    };
    let mut m = Machine::new(cfg, &Workload::Oltp(oltp));
    let r = m.run_to_completion();
    assert_eq!(r.committed_txns, Some(40), "both streams ran to the limit");
    let t = r.traffic.as_ref().expect("traffic summary present");
    assert!(t.ledger.conserved(), "ledger: {:?}", t.ledger);
    assert_eq!(t.ledger.completed, 40, "one completion per admitted txn");
    assert!(t.ledger.generated >= t.ledger.completed);
    assert_eq!(t.latency.count(), 40, "every commit has a latency sample");
    assert!(t.p99_ns() >= t.p50_ns());
    assert!(t.p50_ns() > 0);
    m.check_coherence();
    let report = m.report();
    assert!(report.traffic.is_some());
    assert!(report.to_string().contains("traffic: p50"));
}

/// The same open-loop protocol across the multi-chip quantum engine:
/// idle-until-arrival events cross window barriers without deadlocking,
/// and results stay bit-identical at any worker count.
#[test]
fn open_loop_traffic_multichip_is_worker_invariant() {
    let run = |workers: usize| {
        let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
        cfg.cpu_quantum = 500;
        cfg.traffic = piranha_traffic::TrafficConfig::poisson(400.0);
        let oltp = piranha_workloads::OltpConfig {
            txn_limit: 8,
            ..piranha_workloads::OltpConfig::paper_default()
        };
        let mut m = Machine::new(cfg, &Workload::Oltp(oltp));
        m.set_parallel_workers(workers);
        let r = m.run_to_completion();
        let t = r.traffic.clone().expect("traffic summary");
        assert!(t.ledger.conserved());
        (r.fingerprint(), t.ledger, t.p99_ns(), m.now())
    };
    let a = run(1);
    let b = run(2);
    assert_eq!(a, b, "traffic schedules are worker-count invariant");
    assert_eq!(a.1.completed, 32, "8 txns x 4 cores");
}

/// A zero-rate traffic config must leave the machine bit-identical to
/// one built with traffic entirely absent (the golden-fingerprint
/// guarantee): no stream wrapped, no PRNG drawn, no event rescheduled.
#[test]
fn zero_rate_traffic_is_bit_identical_to_disabled() {
    let run = |traffic: piranha_traffic::TrafficConfig| {
        let mut cfg = SystemConfig::piranha_pn(2);
        cfg.cpu_quantum = 500;
        cfg.traffic = traffic;
        let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
        let r = m.run(1_000, 5_000);
        assert!(r.traffic.is_none(), "no summary when traffic is off");
        r.fingerprint()
    };
    let off = run(piranha_traffic::TrafficConfig::default());
    let zero = run(piranha_traffic::TrafficConfig {
        seed: 0xDEAD,
        queue_depth: 2,
        ..piranha_traffic::TrafficConfig::default()
    });
    assert_eq!(off, zero, "a zero-rate plane draws nothing, costs nothing");
}

/// Two sampled runs with the same seed are bit-identical, estimate
/// included.
#[test]
fn sampled_run_is_deterministic() {
    let run = || {
        let mut cfg = SystemConfig::piranha_pn(2);
        cfg.cpu_quantum = 500;
        let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
        let sample = piranha_sample::SampleConfig::new(10_000, 1_000);
        let r = m.run_sampled(&sample, Some(100_000));
        (
            r.sample.as_ref().unwrap().digest(),
            r.fingerprint(),
            m.now(),
        )
    };
    assert_eq!(run(), run());
}
