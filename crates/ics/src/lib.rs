//! The Intra-Chip Switch (ICS) — paper §2.2.
//!
//! The ICS is the crossbar connecting the 27 on-chip clients (8 CPUs'
//! L1 pairs, 8 L2 banks, two protocol engines, the packet switch, and the
//! system controller). It is "uni-directional, push-only": the initiator
//! sources data, a grant starts a transfer of one 64-bit word per cycle,
//! and transfers are atomic. Eight internal datapaths provide 32 GB/s of
//! aggregate capacity — about three times the memory bandwidth, so "an
//! optimal schedule is not critical" — and two logical lanes (low/high
//! priority) break protocol deadlocks.
//!
//! The timing model reflects that structure: a transfer acquires one of
//! the eight datapath servers for its serialization time (header word +
//! optional 8-word cache line) after a fixed arbitration/grant delay, and
//! per-lane statistics are kept. Because capacity is plentiful, queueing
//! only appears under heavy bursts, exactly as in the real design.

#![warn(missing_docs)]

use piranha_kernel::{Counter, MultiServer};
use piranha_types::time::Clock;
use piranha_types::{Duration, Lane, SimTime};

/// Configuration of the intra-chip switch.
#[derive(Debug, Clone, Copy)]
pub struct IcsConfig {
    /// The chip clock (transfers move one 64-bit word per cycle).
    pub clock: Clock,
    /// Number of internal datapaths (8 in the paper).
    pub datapaths: usize,
    /// Arbitration + grant pipeline depth in cycles before data moves.
    pub grant_cycles: u64,
}

impl IcsConfig {
    /// The prototype's switch: 500 MHz, 8 datapaths, 2-cycle grant.
    pub fn paper_default() -> Self {
        IcsConfig {
            clock: Clock::from_mhz(500),
            datapaths: 8,
            grant_cycles: 2,
        }
    }

    /// A switch clocked differently (e.g. the 1.25 GHz full-custom chip).
    pub fn with_clock(clock: Clock) -> Self {
        IcsConfig {
            clock,
            ..Self::paper_default()
        }
    }
}

/// The size of an ICS transaction, in 64-bit data words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferSize {
    /// A request/grant/invalidate message: header only.
    Header,
    /// A full 64-byte cache line plus header.
    Line,
}

impl TransferSize {
    /// Number of 64-bit words moved.
    pub fn words(self) -> u64 {
        match self {
            TransferSize::Header => 1,
            TransferSize::Line => 9,
        }
    }
}

/// The intra-chip switch timing model.
///
/// # Examples
///
/// ```
/// use piranha_ics::{Ics, IcsConfig, TransferSize};
/// use piranha_types::{Lane, SimTime};
///
/// let mut ics = Ics::new(IcsConfig::paper_default());
/// let t = ics.transfer(SimTime::ZERO, TransferSize::Header, Lane::Low);
/// // 2-cycle grant + 1 word at 500 MHz = 6 ns.
/// assert_eq!(t.as_ns(), 6);
/// ```
#[derive(Debug)]
pub struct Ics {
    cfg: IcsConfig,
    datapaths: MultiServer,
    transfers: [Counter; 2],
    words: Counter,
}

impl Ics {
    /// A new, idle switch.
    ///
    /// # Panics
    ///
    /// Panics if `datapaths` is zero.
    pub fn new(cfg: IcsConfig) -> Self {
        Ics {
            cfg,
            datapaths: MultiServer::new(cfg.datapaths),
            transfers: [Counter::new(); 2],
            words: Counter::new(),
        }
    }

    /// Perform a transfer starting at `now`; returns when the last word
    /// arrives at the destination.
    ///
    /// The high-priority lane models the paper's second logical lane: it
    /// exists to break deadlocks, not to preempt (the real ICS shares the
    /// datapaths too and distinguishes lanes only by ready lines), so both
    /// lanes share the datapath pool here and are tracked separately in
    /// the statistics.
    pub fn transfer(&mut self, now: SimTime, size: TransferSize, lane: Lane) -> SimTime {
        let idx = usize::from(lane == Lane::High);
        self.transfers[idx].inc();
        self.words.add(size.words());
        let service = self.cfg.clock.cycles_dur(size.words());
        let granted = now + self.cfg.clock.cycles_dur(self.cfg.grant_cycles);
        self.datapaths.acquire(granted, service)
    }

    /// Total transfers on the low-priority (and I/O) lane.
    pub fn low_transfers(&self) -> u64 {
        self.transfers[0].get()
    }

    /// Total transfers on the high-priority lane.
    pub fn high_transfers(&self) -> u64 {
        self.transfers[1].get()
    }

    /// Total 64-bit words moved.
    pub fn words_moved(&self) -> u64 {
        self.words.get()
    }

    /// Aggregate datapath utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.as_ps() == 0 {
            return 0.0;
        }
        let cap = Duration::from_ps(horizon.as_ps() * self.cfg.datapaths as u64);
        self.datapaths.busy_time().as_ps() as f64 / cap.as_ps() as f64
    }

    /// The switch configuration.
    pub fn config(&self) -> IcsConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_line_sizes() {
        assert_eq!(TransferSize::Header.words(), 1);
        assert_eq!(TransferSize::Line.words(), 9);
    }

    #[test]
    fn uncontended_latency() {
        let mut ics = Ics::new(IcsConfig::paper_default());
        // 2 grant cycles + 9 words at 2ns/cycle = 22ns for a line.
        let t = ics.transfer(SimTime::ZERO, TransferSize::Line, Lane::High);
        assert_eq!(t.as_ns(), 22);
    }

    #[test]
    fn eight_transfers_proceed_in_parallel() {
        let mut ics = Ics::new(IcsConfig::paper_default());
        let times: Vec<u64> = (0..8)
            .map(|_| {
                ics.transfer(SimTime::ZERO, TransferSize::Line, Lane::Low)
                    .as_ns()
            })
            .collect();
        assert!(
            times.iter().all(|&t| t == 22),
            "all eight datapaths usable: {times:?}"
        );
        // The ninth queues behind one of them.
        let t9 = ics.transfer(SimTime::ZERO, TransferSize::Line, Lane::Low);
        assert_eq!(t9.as_ns(), 40);
    }

    #[test]
    fn lane_statistics_are_separate() {
        let mut ics = Ics::new(IcsConfig::paper_default());
        ics.transfer(SimTime::ZERO, TransferSize::Header, Lane::Low);
        ics.transfer(SimTime::ZERO, TransferSize::Header, Lane::Io);
        ics.transfer(SimTime::ZERO, TransferSize::Line, Lane::High);
        assert_eq!(ics.low_transfers(), 2);
        assert_eq!(ics.high_transfers(), 1);
        assert_eq!(ics.words_moved(), 11);
    }

    #[test]
    fn utilization_accounts_for_all_datapaths() {
        let mut ics = Ics::new(IcsConfig::paper_default());
        ics.transfer(SimTime::ZERO, TransferSize::Line, Lane::Low);
        let u = ics.utilization(SimTime::from_ns(180));
        assert!(u > 0.0 && u < 0.05, "u = {u}");
        assert_eq!(ics.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn paper_bandwidth_matches_32_gb_per_s() {
        // 8 datapaths x 8 bytes/cycle x 500 MHz = 32 GB/s.
        let cfg = IcsConfig::paper_default();
        let bytes_per_s = cfg.datapaths as u64 * 8 * cfg.clock.mhz() * 1_000_000;
        assert_eq!(bytes_per_s, 32_000_000_000);
    }
}
