//! The long-running experiment server.
//!
//! ```text
//! piranha_serve [--addr=HOST:PORT] [--store=DIR] [--threads=N] [--parallel=N]
//! ```
//!
//! - `--addr=` — listen address (default `127.0.0.1:7654`; use port 0
//!   for an ephemeral port, printed at startup);
//! - `--store=` — persistent result store directory (falls back to the
//!   `PIRANHA_STORE` environment variable; omit both for memory-only);
//! - `--threads=` — sweep thread budget for the worker pool (default:
//!   `PIRANHA_THREADS` / available parallelism);
//! - `--parallel=` — lane workers per multi-chip simulation; the pool
//!   width is divided by this so the total stays within budget.
//!
//! Clients speak newline-delimited JSON — see `piranha_serve::service`
//! for the protocol, and the `fig_queue` binary for a worked example.

use std::sync::Arc;

use piranha_serve::{DiskStore, Server, ServerConfig};

fn main() {
    let mut addr = "127.0.0.1:7654".to_string();
    let mut store_dir = std::env::var("PIRANHA_STORE")
        .ok()
        .filter(|s| !s.is_empty());
    let mut cfg = ServerConfig::default();
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--addr=") {
            addr = v.to_string();
        } else if let Some(v) = a.strip_prefix("--store=") {
            store_dir = Some(v.to_string());
        } else if let Some(v) = a.strip_prefix("--threads=") {
            if let Ok(n) = v.trim().parse::<usize>() {
                cfg.threads = n.max(1);
            }
        } else if let Some(v) = a.strip_prefix("--parallel=") {
            if let Ok(n) = v.trim().parse::<usize>() {
                piranha_harness::set_node_workers(n.max(1));
            }
        } else if a == "--help" || a == "-h" {
            println!(
                "usage: piranha_serve [--addr=HOST:PORT] [--store=DIR] \
                 [--threads=N] [--parallel=N]"
            );
            return;
        }
    }

    let store = match &store_dir {
        None => None,
        Some(dir) => match DiskStore::open(dir) {
            Ok(s) => Some(Arc::new(s) as Arc<dyn piranha_harness::ResultStore>),
            Err(e) => {
                eprintln!("piranha_serve: cannot open store {dir:?}: {e}");
                std::process::exit(1);
            }
        },
    };

    let server = match Server::bind(addr.as_str(), store, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("piranha_serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let bound = server.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    println!(
        "piranha_serve listening on {bound} (store: {})",
        store_dir.as_deref().unwrap_or("none"),
    );
    server.run();
    println!("piranha_serve: shut down");
}
