//! Persistent result store and long-running experiment service over the
//! memoizing harness.
//!
//! The figure binaries built in earlier milestones rebuild the
//! harness's in-memory cache from scratch every process; this crate
//! makes simulation results **durable artifacts** keyed by the
//! harness's stable `cache_key`, the way mature simulator
//! infrastructures amortize expensive cycle-accurate runs across
//! exploration campaigns. Two layers:
//!
//! - **[`DiskStore`]** (`store`/`envelope` modules): a content-addressed
//!   on-disk cache of [`piranha_system::RunResult`]s in a versioned,
//!   fingerprint-verified JSON envelope, with atomic write-then-rename
//!   persistence and corruption-tolerant loads. It plugs into the
//!   harness through the [`piranha_harness::ResultStore`] trait (the
//!   harness sits *below* this crate in the dependency graph and only
//!   sees the trait), so `--store=<dir>` / `PIRANHA_STORE` makes every
//!   figure binary resumable across processes.
//! - **[`Server`]/[`Client`]** (`service`/`client` modules): a
//!   long-running TCP service (newline-delimited JSON; std only) that
//!   accepts [`RunSpec`] plan submissions, deduplicates against the
//!   in-memory cache and the store, shards uncached runs across a
//!   worker pool budgeted like `Harness::execute`, and streams per-job
//!   progress with cache-hit provenance.
//!
//! The [`json`] module is the one JSON implementation the whole
//! workspace shares (the envelope, the wire protocol, and — via
//! `piranha::observe::json` — the figure binaries' report emitters).

pub mod client;
pub mod envelope;
pub mod json;
pub mod service;
pub mod spec;
pub mod store;

pub use client::{Client, JobRow, JobStatus, JobTicket};
pub use envelope::{build_stamp, Envelope, SCHEMA_VERSION};
pub use service::{Server, ServerConfig};
pub use spec::RunSpec;
pub use store::DiskStore;

use std::sync::Arc;

/// Open a [`DiskStore`] at `dir` and install it as the process-wide
/// default every subsequently built `Harness` picks up
/// ([`piranha_harness::set_default_store`]).
///
/// # Errors
///
/// Propagates the directory-creation failure.
pub fn install_store(dir: impl Into<std::path::PathBuf>) -> std::io::Result<Arc<DiskStore>> {
    let store = Arc::new(DiskStore::open(dir)?);
    piranha_harness::set_default_store(Some(store.clone()));
    Ok(store)
}
