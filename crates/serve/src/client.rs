//! A small synchronous client for the experiment service, used by the
//! `fig_queue` demo binary and the end-to-end tests.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::Json;
use crate::spec::RunSpec;

/// A connected client. One request/response at a time (the protocol is
/// line-oriented and synchronous).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// The server's acknowledgement of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTicket {
    /// Job id for `status`/`watch`/`wait`.
    pub job: u64,
    /// Entries in the job.
    pub total: u64,
    /// Entries answered instantly from the in-memory cache.
    pub cached: u64,
}

/// One entry row of a job status report.
#[derive(Debug, Clone)]
pub struct JobRow {
    /// The spec's human-readable label.
    pub label: String,
    /// `queued`, `running`, or `done`.
    pub state: String,
    /// `memory`, `store`, or `computed` (done rows only).
    pub provenance: Option<String>,
    /// Wall-clock cost of resolving the entry (done rows only).
    pub wall_ms: Option<u64>,
    /// Result fingerprint, 16 hex digits (done rows only).
    pub fingerprint: Option<String>,
    /// Aggregate throughput in instructions/ns (done rows only).
    pub ipns: Option<f64>,
}

/// A job's progress snapshot.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job id.
    pub job: u64,
    /// `queued`, `running`, or `done`.
    pub state: String,
    /// Entries total.
    pub total: u64,
    /// Entries completed.
    pub done: u64,
    /// Per-entry rows.
    pub rows: Vec<JobRow>,
}

impl JobStatus {
    /// Whether every entry has completed.
    pub fn is_done(&self) -> bool {
        self.state == "done"
    }
}

impl Client {
    /// Connect to a running server.
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // The protocol is many small request/response lines; without
        // NODELAY, Nagle + delayed ACK turns each into a ~40 ms stall.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// One request → one response line.
    fn request(&mut self, req: Json) -> Result<Json, String> {
        writeln!(self.writer, "{req}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("send: {e}"))?;
        self.read_line()
    }

    fn read_line(&mut self) -> Result<Json, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        let v = Json::parse(line.trim_end())?;
        if v.get("ok").and_then(Json::as_bool) == Some(false) {
            return Err(v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified server error")
                .to_string());
        }
        Ok(v)
    }

    /// Liveness check; returns the server's worker-pool width.
    ///
    /// # Errors
    ///
    /// Reports transport failures or a malformed response.
    pub fn ping(&mut self) -> Result<u64, String> {
        let v = self.request(Json::obj(vec![("cmd".into(), Json::str("ping"))]))?;
        v.get("workers")
            .and_then(Json::as_u64)
            .ok_or_else(|| "malformed pong".into())
    }

    /// Submit a plan of run specs.
    ///
    /// # Errors
    ///
    /// Reports transport failures or a server-side rejection (unknown
    /// preset, empty plan, …).
    pub fn submit(&mut self, plan: &[RunSpec]) -> Result<JobTicket, String> {
        let v = self.request(Json::obj(vec![
            ("cmd".into(), Json::str("submit")),
            (
                "plan".into(),
                Json::arr(plan.iter().map(RunSpec::to_json).collect()),
            ),
        ]))?;
        Ok(JobTicket {
            job: v
                .get("job")
                .and_then(Json::as_u64)
                .ok_or("malformed submit ack")?,
            total: v.get("total").and_then(Json::as_u64).unwrap_or(0),
            cached: v.get("cached").and_then(Json::as_u64).unwrap_or(0),
        })
    }

    /// One status snapshot of a job.
    ///
    /// # Errors
    ///
    /// Reports transport failures or an unknown job id.
    pub fn status(&mut self, job: u64) -> Result<JobStatus, String> {
        let v = self.request(Json::obj(vec![
            ("cmd".into(), Json::str("status")),
            ("job".into(), Json::U64(job)),
        ]))?;
        let rows = v
            .get("rows")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|r| JobRow {
                label: r
                    .get("label")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                state: r
                    .get("state")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                provenance: r
                    .get("provenance")
                    .and_then(Json::as_str)
                    .map(str::to_string),
                wall_ms: r.get("wall_ms").and_then(Json::as_u64),
                fingerprint: r
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .map(str::to_string),
                ipns: r.get("ipns").and_then(Json::as_f64),
            })
            .collect();
        Ok(JobStatus {
            job,
            state: v
                .get("state")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            total: v.get("total").and_then(Json::as_u64).unwrap_or(0),
            done: v.get("done").and_then(Json::as_u64).unwrap_or(0),
            rows,
        })
    }

    /// Poll `status` until the job completes.
    ///
    /// # Errors
    ///
    /// Propagates the first `status` failure.
    pub fn wait(&mut self, job: u64, poll: Duration) -> Result<JobStatus, String> {
        loop {
            let s = self.status(job)?;
            if s.is_done() {
                return Ok(s);
            }
            std::thread::sleep(poll);
        }
    }

    /// Stream a job's progress events, invoking `on_event` per line
    /// until the terminating `job_done` event (passed to the callback
    /// too). Blocks until the job completes.
    ///
    /// # Errors
    ///
    /// Reports transport failures or an unknown job id.
    pub fn watch(&mut self, job: u64, mut on_event: impl FnMut(&Json)) -> Result<(), String> {
        writeln!(
            self.writer,
            "{}",
            Json::obj(vec![
                ("cmd".into(), Json::str("watch")),
                ("job".into(), Json::U64(job)),
            ])
        )
        .map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("send: {e}"))?;
        loop {
            let v = self.read_line()?;
            let done = v.get("event").and_then(Json::as_str) == Some("job_done");
            on_event(&v);
            if done {
                return Ok(());
            }
        }
    }

    /// The server's aggregate counters, as raw JSON.
    ///
    /// # Errors
    ///
    /// Reports transport failures.
    pub fn stats(&mut self) -> Result<Json, String> {
        self.request(Json::obj(vec![("cmd".into(), Json::str("stats"))]))
    }

    /// Ask the server to stop accepting connections and drain.
    ///
    /// # Errors
    ///
    /// Reports transport failures.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.request(Json::obj(vec![("cmd".into(), Json::str("shutdown"))]))?;
        Ok(())
    }
}
