//! The content-addressed on-disk result store.
//!
//! One directory, one JSON envelope file per run, addressed by a
//! 128-bit hash of the harness cache key (two independent FNV-64
//! variants, rendered as 32 hex digits). The full key is stored inside
//! the envelope and compared on load, so an address collision or a
//! foreign file is detected instead of trusted.
//!
//! Persistence is atomic: entries are written to a temporary file in
//! the same directory and `rename(2)`d into place, so a reader never
//! observes a half-written envelope and concurrent writers of the same
//! key are safe (the simulator is deterministic — last writer wins with
//! identical bytes). Loads are corruption-tolerant by contract: any
//! parse, version, stamp, or fingerprint problem is a cache miss, never
//! a panic.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use piranha_harness::ResultStore;
use piranha_system::RunResult;

use crate::envelope;

/// A persistent, content-addressed store of [`RunResult`]s, shared
/// freely across threads and processes.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    /// Distinguishes temp files of concurrent writers in this process;
    /// the pid distinguishes processes.
    tmp_seq: AtomicU64,
}

impl DiskStore {
    /// Open (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the failure to create the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskStore {
            dir,
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content address of a cache key: two independent FNV-64
    /// variants over the key, 32 hex digits total. The key itself can
    /// be arbitrarily long and contains characters hostile to
    /// filenames; the address is fixed-width and safe.
    pub fn address(key: &str) -> String {
        let a = envelope::fnv1a(key.as_bytes());
        // Second variant: different offset basis (FNV-0 style seed over
        // a tag) so the two halves are independent.
        let b = envelope::fnv1a(format!("piranha-store/{key}").as_bytes());
        format!("{a:016x}{b:016x}")
    }

    /// The on-disk path an entry for `key` lives at.
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{}.json", Self::address(key)))
    }

    /// Number of entries currently on disk (files matching the
    /// `<32 hex>.json` shape).
    pub fn len(&self) -> usize {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.len() == 37
                    && name.ends_with(".json")
                    && name[..32].bytes().all(|b| b.is_ascii_hexdigit())
            })
            .count()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ResultStore for DiskStore {
    fn load(&self, key: &str) -> Option<RunResult> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let env = envelope::decode(&text).ok()?;
        // Content-address collision (or a foreign file at our address):
        // the envelope names a different run — miss, don't serve it.
        (env.key == key).then_some(env.result)
    }

    fn save(&self, key: &str, result: &RunResult) {
        // Swallow I/O errors by contract: a full disk or a read-only
        // store must not fail the sweep — the entry simply won't hit.
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}-{}",
            Self::address(key),
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        let body = envelope::encode(key, result);
        if std::fs::write(&tmp, body).is_ok()
            && std::fs::rename(&tmp, self.entry_path(key)).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piranha_cpu::CoreStats;
    use piranha_types::time::Clock;
    use piranha_types::Duration;

    fn result(name: &str) -> RunResult {
        RunResult::new(
            name.into(),
            Duration::from_ns(500),
            Clock::from_mhz(500),
            vec![CoreStats {
                instrs: 1000,
                ..Default::default()
            }],
        )
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("piranha-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip_and_miss() {
        let dir = tmp_dir("roundtrip");
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.is_empty());
        assert!(store.load("absent").is_none());

        let r = result("p8");
        store.save("key|a", &r);
        assert_eq!(store.len(), 1);
        let back = store.load("key|a").expect("present");
        assert_eq!(back.fingerprint(), r.fingerprint());
        assert!(store.load("key|b").is_none(), "different key misses");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_entries_miss_instead_of_panicking() {
        let dir = tmp_dir("corrupt");
        let store = DiskStore::open(&dir).unwrap();
        let r = result("p1");
        store.save("k", &r);
        let path = store.entry_path("k");

        let good = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &good[..good.len() / 3]).unwrap();
        assert!(store.load("k").is_none(), "truncated entry is a miss");

        std::fs::write(&path, "{\"v\":9999}").unwrap();
        assert!(store.load("k").is_none(), "wrong version is a miss");

        std::fs::write(&path, "complete garbage \u{0000}").unwrap();
        assert!(store.load("k").is_none(), "garbage is a miss");

        // And a fresh save repairs the entry.
        store.save("k", &r);
        assert!(store.load("k").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn address_collision_is_detected_via_stored_key() {
        let dir = tmp_dir("collision");
        let store = DiskStore::open(&dir).unwrap();
        let r = result("x");
        store.save("real-key", &r);
        // Simulate a collision: move the entry to the address of
        // another key. The envelope still names "real-key", so the load
        // of the other key must miss.
        let other = "other-key";
        std::fs::rename(store.entry_path("real-key"), store.entry_path(other)).unwrap();
        assert!(store.load(other).is_none(), "foreign envelope rejected");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn addresses_are_stable_and_filename_safe() {
        let key = "Cfg { a: 1 }|Oltp|RunScale { .. }";
        let a = DiskStore::address(key);
        assert_eq!(a, DiskStore::address(key), "deterministic");
        assert_eq!(a.len(), 32);
        assert!(a.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_ne!(a, DiskStore::address("Cfg { a: 2 }|Oltp|RunScale { .. }"));
    }

    #[test]
    fn two_stores_share_one_directory() {
        let dir = tmp_dir("shared");
        let s1 = DiskStore::open(&dir).unwrap();
        let s2 = DiskStore::open(&dir).unwrap();
        let r = result("shared");
        s1.save("k", &r);
        assert_eq!(
            s2.load("k").map(|x| x.fingerprint()),
            Some(r.fingerprint()),
            "a second handle (as another process would hold) sees the entry"
        );
        // Concurrent same-key writers are safe: both rename complete
        // files over each other.
        s2.save("k", &r);
        s1.save("k", &r);
        assert_eq!(s1.len(), 1);
        assert!(s1.load("k").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
