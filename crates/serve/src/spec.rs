//! The wire format for run submissions: a [`RunSpec`] names a
//! configuration preset, workload, and scale symbolically, and resolves
//! into the harness's [`RunRequest`] on the server.
//!
//! Configurations are *named*, not serialized structurally: the
//! `SystemConfig` Debug rendering that keys the cache is hundreds of
//! fields deep and owned by the simulator, so clients speak in the
//! paper's vocabulary (`p8`, `ooo`, …) and both sides derive the full
//! config — and therefore the cache key — from the same preset
//! constructors. A client and server of the same build can never
//! disagree on what a spec means.
//!
//! # Examples
//!
//! ```
//! use piranha_serve::spec::RunSpec;
//! let spec = RunSpec::new("p4", "oltp", "tiny").with_chips(2);
//! let req = spec.resolve().unwrap();
//! assert_eq!(req.cfg.nodes, 2);
//! let wire = spec.to_json().to_string();
//! let back = RunSpec::from_json(&piranha_serve::json::Json::parse(&wire).unwrap()).unwrap();
//! assert_eq!(back.resolve().unwrap().key(), req.key());
//! ```

use piranha_harness::{RunRequest, RunScale};
use piranha_system::SystemConfig;
use piranha_workloads::{DssConfig, OltpConfig, SynthConfig, WebConfig, Workload};

use crate::json::Json;

/// One run named symbolically: `preset` × `workload` × `scale`, with
/// optional multi-chip / I/O-node modifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// Configuration preset: `p1`..`p8`, `p8f`, `ooo`, `ino`, `p8-pess`.
    pub preset: String,
    /// Chips the preset is scaled to (`scaled_to_chips`); 1 = single.
    pub chips: usize,
    /// I/O nodes attached (`with_io_nodes`).
    pub io_nodes: usize,
    /// Workload spec: `oltp`, `oltp:<txns>`, `tpcc`, `tpcc:<txns>`,
    /// `dss`, `dss:<lines>`, `synth`, `web`.
    pub workload: String,
    /// Scale spec: `tiny`, `quick`, `full`, `huge`, `completion`.
    pub scale: String,
}

impl RunSpec {
    /// A single-chip spec.
    pub fn new(
        preset: impl Into<String>,
        workload: impl Into<String>,
        scale: impl Into<String>,
    ) -> Self {
        RunSpec {
            preset: preset.into(),
            chips: 1,
            io_nodes: 0,
            workload: workload.into(),
            scale: scale.into(),
        }
    }

    /// Scale the preset to `chips` chips (builder-style).
    pub fn with_chips(mut self, chips: usize) -> Self {
        self.chips = chips.max(1);
        self
    }

    /// Attach `n` I/O nodes (builder-style).
    pub fn with_io_nodes(mut self, n: usize) -> Self {
        self.io_nodes = n;
        self
    }

    /// A short human-readable label for progress displays.
    pub fn label(&self) -> String {
        let mut s = self.preset.clone();
        if self.chips > 1 {
            s.push_str(&format!("x{}", self.chips));
        }
        if self.io_nodes > 0 {
            s.push_str(&format!("+io{}", self.io_nodes));
        }
        format!("{s}|{}|{}", self.workload, self.scale)
    }

    /// Resolve the symbolic names into a concrete [`RunRequest`].
    ///
    /// # Errors
    ///
    /// Names the first unknown preset/workload/scale token.
    pub fn resolve(&self) -> Result<RunRequest, String> {
        let mut cfg = resolve_preset(&self.preset)?;
        if self.chips > 1 {
            cfg = cfg.scaled_to_chips(self.chips);
        }
        if self.io_nodes > 0 {
            cfg = cfg.with_io_nodes(self.io_nodes);
        }
        Ok(RunRequest::new(
            cfg,
            resolve_workload(&self.workload)?,
            resolve_scale(&self.scale)?,
        ))
    }

    /// The spec as a JSON object (the `submit` wire format).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("preset".into(), Json::str(&self.preset)),
            ("chips".into(), Json::U64(self.chips as u64)),
            ("io_nodes".into(), Json::U64(self.io_nodes as u64)),
            ("workload".into(), Json::str(&self.workload)),
            ("scale".into(), Json::str(&self.scale)),
        ])
    }

    /// Parse a spec object (missing `chips`/`io_nodes` default to 1/0).
    ///
    /// # Errors
    ///
    /// Reports a missing `preset`/`workload`/`scale` field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let field = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("run spec needs a string field {k:?}"))
        };
        Ok(RunSpec {
            preset: field("preset")?,
            chips: v.get("chips").and_then(Json::as_u64).unwrap_or(1).max(1) as usize,
            io_nodes: v.get("io_nodes").and_then(Json::as_u64).unwrap_or(0) as usize,
            workload: field("workload")?,
            scale: field("scale")?,
        })
    }
}

/// Resolve a configuration preset token.
///
/// # Errors
///
/// Names the unknown token and lists the valid ones.
pub fn resolve_preset(token: &str) -> Result<SystemConfig, String> {
    match token.trim().to_ascii_lowercase().as_str() {
        "p8f" => Ok(SystemConfig::piranha_p8f()),
        "ooo" => Ok(SystemConfig::ooo()),
        "ino" => Ok(SystemConfig::ino()),
        "p8-pess" | "p8_pess" | "p8-pessimistic" => Ok(SystemConfig::piranha_p8_pessimistic()),
        t => {
            if let Some(n) = t.strip_prefix('p').and_then(|n| n.parse::<usize>().ok()) {
                if (1..=8).contains(&n) {
                    return Ok(SystemConfig::piranha_pn(n));
                }
            }
            Err(format!(
                "unknown config preset {token:?} (expected p1..p8, p8f, ooo, ino, p8-pess)"
            ))
        }
    }
}

/// Resolve a workload token (`oltp[:txns]`, `tpcc[:txns]`,
/// `dss[:lines]`, `synth`, `web`).
///
/// # Errors
///
/// Names the unknown token or a malformed bound.
pub fn resolve_workload(token: &str) -> Result<Workload, String> {
    let token = token.trim().to_ascii_lowercase();
    let (base, bound) = match token.split_once(':') {
        Some((b, n)) => {
            let n: u64 = n
                .trim()
                .parse()
                .map_err(|_| format!("bad workload bound in {token:?}"))?;
            (b.trim(), Some(n))
        }
        None => (token.as_str(), None),
    };
    match base {
        "oltp" => Ok(Workload::Oltp(OltpConfig {
            txn_limit: bound.unwrap_or(0),
            ..OltpConfig::paper_default()
        })),
        "tpcc" => Ok(Workload::Oltp(OltpConfig {
            txn_limit: bound.unwrap_or(0),
            ..OltpConfig::tpcc_like()
        })),
        "dss" => Ok(Workload::Dss(DssConfig {
            line_limit: bound.unwrap_or(0),
            ..DssConfig::paper_default()
        })),
        "synth" if bound.is_none() => Ok(Workload::Synth(SynthConfig::light())),
        "web" if bound.is_none() => Ok(Workload::Web(WebConfig::paper_default())),
        _ => Err(format!(
            "unknown workload {token:?} (expected oltp[:txns], tpcc[:txns], dss[:lines], synth, web)"
        )),
    }
}

/// Resolve a scale token.
///
/// # Errors
///
/// Names the unknown token.
pub fn resolve_scale(token: &str) -> Result<RunScale, String> {
    match token.trim().to_ascii_lowercase().as_str() {
        "tiny" => Ok(RunScale::tiny()),
        "quick" => Ok(RunScale::quick()),
        "full" => Ok(RunScale::full()),
        "huge" => Ok(RunScale::huge()),
        "completion" => Ok(RunScale::completion()),
        t => Err(format!(
            "unknown scale {t:?} (expected tiny, quick, full, huge, completion)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_to_paper_configs() {
        assert_eq!(resolve_preset("p8").unwrap().name, "P8");
        assert_eq!(resolve_preset("P4").unwrap().cpus_per_node, 4);
        assert_eq!(resolve_preset("ooo").unwrap().name, "OOO");
        assert_eq!(resolve_preset("ino").unwrap().name, "INO");
        assert_eq!(resolve_preset("p8f").unwrap().name, "P8F");
        assert_eq!(resolve_preset("p8-pess").unwrap().name, "P8-pess");
        assert!(resolve_preset("p9").is_err());
        assert!(resolve_preset("alpha").is_err());
    }

    #[test]
    fn workloads_resolve_with_bounds() {
        assert!(matches!(
            resolve_workload("oltp").unwrap(),
            Workload::Oltp(c) if c.txn_limit == 0
        ));
        assert!(matches!(
            resolve_workload("oltp:25").unwrap(),
            Workload::Oltp(c) if c.txn_limit == 25
        ));
        assert!(matches!(
            resolve_workload("dss:100").unwrap(),
            Workload::Dss(c) if c.line_limit == 100
        ));
        assert!(matches!(
            resolve_workload("synth").unwrap(),
            Workload::Synth(_)
        ));
        assert!(matches!(resolve_workload("web").unwrap(), Workload::Web(_)));
        assert!(resolve_workload("oltp:lots").is_err());
        assert!(resolve_workload("spec2017").is_err());
        assert!(resolve_workload("synth:5").is_err());
    }

    #[test]
    fn specs_round_trip_through_json_to_the_same_key() {
        let spec = RunSpec::new("p4", "oltp:10", "completion")
            .with_chips(2)
            .with_io_nodes(1);
        let wire = spec.to_json().to_string();
        let back = RunSpec::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(
            back.resolve().unwrap().key(),
            spec.resolve().unwrap().key(),
            "round-tripped spec addresses the same cache entry"
        );
    }

    #[test]
    fn modifiers_apply_to_the_config() {
        let req = RunSpec::new("p2", "synth", "tiny")
            .with_chips(3)
            .with_io_nodes(2)
            .resolve()
            .unwrap();
        assert_eq!(req.cfg.nodes, 3);
        assert_eq!(req.cfg.io_nodes, 2);
        assert_eq!(req.cfg.name, "P2x3");
        assert!(req.scale == RunScale::tiny());
    }

    #[test]
    fn bad_specs_report_not_panic() {
        assert!(RunSpec::new("p8", "oltp", "gigantic").resolve().is_err());
        assert!(RunSpec::new("vax", "oltp", "tiny").resolve().is_err());
        assert!(RunSpec::from_json(&Json::parse("{}").unwrap()).is_err());
    }
}
