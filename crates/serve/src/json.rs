//! A minimal JSON value model, writer, and parser — just enough for the
//! store envelope and the wire protocol, with two properties the
//! standard text round trip cannot give us for free:
//!
//! - **u64 fidelity**: integers are carried as [`Json::U64`]/[`Json::I64`]
//!   and never pass through `f64`, so a 64-bit fingerprint or an
//!   `f64::to_bits` payload survives encode→decode bit-exactly;
//! - **no surprises on floats**: non-finite `f64`s serialize as `null`
//!   (JSON has no spelling for them), and anything that must be
//!   bit-exact is stored as its `to_bits()` integer instead.
//!
//! The figure binaries' hand-rolled JSON writers funnel through
//! [`Json`] too (via `piranha::observe::json`), so there is exactly one
//! escaping/formatting implementation in the workspace.
//!
//! # Examples
//!
//! ```
//! use piranha_serve::json::Json;
//! let v = Json::obj(vec![
//!     ("name".into(), Json::str("p8")),
//!     ("fingerprint".into(), Json::U64(u64::MAX)),
//! ]);
//! let text = v.to_string();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("fingerprint").and_then(Json::as_u64), Some(u64::MAX));
//! ```

use std::fmt;

/// A JSON value. Numbers keep their parsed width: an unsigned integer
/// is [`Json::U64`], a negative integer [`Json::I64`], everything else
/// [`Json::F64`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (fits `u64`).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value (convenience over `Json::Str(s.into())`).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(String, Json)>) -> Json {
        Json::Obj(fields)
    }

    /// An array value.
    pub fn arr(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`: a `U64`, or a non-negative `I64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `i64` (a `U64` must fit).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(n) => Some(*n),
            Json::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Any numeric value as `f64` (integers convert; precision may drop
    /// past 2^53 — use the integer accessors for bit-exact payloads).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(x) => Some(*x),
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parse one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a one-line description with the byte offset of the first
    /// problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(n) => write!(f, "{n}"),
            Json::I64(n) => write!(f, "{n}"),
            Json::F64(x) => {
                if !x.is_finite() {
                    // JSON cannot spell NaN/inf; bit-exact floats travel
                    // as to_bits() integers instead.
                    return f.write_str("null");
                }
                let s = format!("{x}");
                f.write_str(&s)?;
                if !s.contains(['.', 'e', 'E']) {
                    f.write_str(".0")?;
                }
                Ok(())
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Write `s` as a JSON string literal (quotes included).
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Escape `s` into a standalone JSON string literal. Shared helper for
/// callers assembling JSON text outside the [`Json`] tree.
pub fn escape(s: &str) -> String {
    Json::Str(s.to_string()).to_string()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad unicode escape".to_string())?,
                            );
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-borrow the source so multi-byte UTF-8 sequences
                    // pass through intact.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest).map_err(|_| "bad utf-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_extreme_integers() {
        for n in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 53, (1 << 53) + 1] {
            let text = Json::U64(n).to_string();
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n), "{n}");
        }
        let text = Json::I64(i64::MIN).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_i64(), Some(i64::MIN));
    }

    #[test]
    fn round_trips_strings_with_escapes() {
        for s in ["", "plain", "q\"b\\s\nnl\ttab", "unicode Δπ→", "\u{0001}"] {
            let text = Json::str(s).to_string();
            assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s), "{s:?}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,-2,3.5,null,true],"b":{"c":"d"}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_i64(), Some(-2));
        assert_eq!(a[2].as_f64(), Some(3.5));
        assert!(a[3].is_null());
        assert_eq!(a[4].as_bool(), Some(true));
        assert_eq!(
            v.get("b").unwrap().get("c").and_then(Json::as_str),
            Some("d")
        );
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(Json::parse(r#""Aé😀""#).unwrap().as_str(), Some("Aé😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn floats_write_valid_json() {
        assert_eq!(Json::F64(2.0).to_string(), "2.0", "keeps float-ness");
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
        let x = 0.1 + 0.2;
        let text = Json::F64(x).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(x));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj(vec![("z".into(), Json::U64(1)), ("a".into(), Json::U64(2))]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }
}
