//! The long-running experiment service: a TCP server that accepts
//! [`RunSpec`] submissions, deduplicates them against the in-memory
//! cache and the persistent store, shards uncached runs across a worker
//! pool, and streams per-job progress events.
//!
//! ## Protocol
//!
//! Newline-delimited JSON over TCP — one request object per line, one
//! (or, for `watch`, many) response object(s) per line:
//!
//! | request | response |
//! |---|---|
//! | `{"cmd":"ping"}` | `{"ok":true,"pong":true,...}` |
//! | `{"cmd":"submit","plan":[<spec>...]}` | `{"ok":true,"job":N,"total":T,"cached":C}` |
//! | `{"cmd":"status","job":N}` | `{"ok":true,"state":...,"rows":[...]}` |
//! | `{"cmd":"watch","job":N}` | event lines, then `{"event":"job_done"}` |
//! | `{"cmd":"stats"}` | `{"ok":true,"executed":...,...}` |
//! | `{"cmd":"shutdown"}` | `{"ok":true,"stopping":true}` |
//!
//! Every error is `{"ok":false,"error":"..."}` — a malformed line never
//! kills the connection, let alone the server.
//!
//! ## Execution
//!
//! The worker pool is sized exactly like [`Harness::execute`] sizes its
//! sweep: `sweep_share(threads, node_workers())`, so `pool width × lane
//! workers` stays within the configured budget even when each simulated
//! machine spins up its own lane threads. Each work item resolves
//! through the same claim protocol the harness uses ([`SharedCache`]),
//! so a spec submitted twice — in one job, across jobs, or while
//! already running — is simulated exactly once; the second submission
//! reports `memory` provenance. Store hits report `store`, fresh
//! simulations `computed`, each with its wall-clock cost.
//!
//! [`Harness::execute`]: piranha_harness::Harness::execute

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use piranha_harness::{node_workers, run_config, Claim, ResultStore, RunRequest, SharedCache};

use crate::envelope::SCHEMA_VERSION;
use crate::json::Json;
use crate::spec::RunSpec;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The sweep thread budget the worker pool is carved from
    /// (default: [`piranha_harness::default_threads`]).
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: piranha_harness::default_threads(),
        }
    }
}

/// Lifecycle of one entry of a job.
#[derive(Debug, Clone)]
enum EntryState {
    Queued,
    Running,
    Done {
        provenance: &'static str,
        wall_ms: u64,
        fingerprint: u64,
        ipns: f64,
    },
}

#[derive(Debug)]
struct Entry {
    label: String,
    key: String,
    state: EntryState,
}

#[derive(Debug, Default)]
struct Job {
    entries: Vec<Entry>,
    done: usize,
    /// Pre-rendered progress event lines, replayed to `watch`ers.
    events: Vec<String>,
}

impl Job {
    fn state(&self) -> &'static str {
        if self.done == self.entries.len() {
            "done"
        } else if self
            .entries
            .iter()
            .any(|e| matches!(e.state, EntryState::Running))
        {
            "running"
        } else {
            "queued"
        }
    }

    fn rows(&self) -> Json {
        Json::arr(
            self.entries
                .iter()
                .map(|e| {
                    let mut fields = vec![
                        ("label".into(), Json::str(&e.label)),
                        (
                            "key_address".into(),
                            Json::str(crate::DiskStore::address(&e.key)),
                        ),
                    ];
                    match &e.state {
                        EntryState::Queued => fields.push(("state".into(), Json::str("queued"))),
                        EntryState::Running => fields.push(("state".into(), Json::str("running"))),
                        EntryState::Done {
                            provenance,
                            wall_ms,
                            fingerprint,
                            ipns,
                        } => {
                            fields.push(("state".into(), Json::str("done")));
                            fields.push(("provenance".into(), Json::str(*provenance)));
                            fields.push(("wall_ms".into(), Json::U64(*wall_ms)));
                            fields.push((
                                "fingerprint".into(),
                                Json::str(format!("{fingerprint:016x}")),
                            ));
                            fields.push(("ipns".into(), Json::F64(*ipns)));
                        }
                    }
                    Json::obj(fields)
                })
                .collect(),
        )
    }
}

struct WorkItem {
    job: u64,
    idx: usize,
    req: RunRequest,
}

struct ServerState {
    cache: SharedCache,
    store: Option<Arc<dyn ResultStore>>,
    jobs: Mutex<HashMap<u64, Job>>,
    job_cv: Condvar,
    next_job: AtomicUsize,
    queue: Mutex<VecDeque<WorkItem>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    workers: usize,
    executed: AtomicUsize,
    store_hits: AtomicUsize,
    mem_hits: AtomicUsize,
}

impl ServerState {
    /// Resolve one request exactly as the harness does: ready cache
    /// entry → persistent store → simulate, with in-flight dedup.
    fn resolve(&self, req: &RunRequest) -> (Arc<piranha_system::RunResult>, &'static str) {
        let key = req.key();
        match self.cache.claim(&key) {
            Claim::Ready(r) => {
                self.mem_hits.fetch_add(1, Ordering::Relaxed);
                (r, "memory")
            }
            Claim::Owed(guard) => {
                if let Some(r) = self.store.as_ref().and_then(|s| s.load(&key)) {
                    self.store_hits.fetch_add(1, Ordering::Relaxed);
                    return (guard.fulfill(r), "store");
                }
                let r = run_config(req.cfg.clone(), &req.workload, req.scale);
                if let Some(s) = &self.store {
                    s.save(&key, &r);
                }
                self.executed.fetch_add(1, Ordering::Relaxed);
                (guard.fulfill(r), "computed")
            }
        }
    }

    /// Transition an entry and append its progress event under ONE
    /// lock acquisition: a watcher must never observe the job finished
    /// (`done == entries`) while the final event line is still
    /// in flight.
    fn set_entry_state(&self, job_id: u64, idx: usize, state: EntryState, event: Json) {
        let mut jobs = self.jobs.lock().unwrap();
        if let Some(job) = jobs.get_mut(&job_id) {
            if matches!(state, EntryState::Done { .. })
                && !matches!(job.entries[idx].state, EntryState::Done { .. })
            {
                job.done += 1;
            }
            job.entries[idx].state = state;
            job.events.push(event.to_string());
        }
        drop(jobs);
        self.job_cv.notify_all();
    }

    fn worker_loop(&self) {
        loop {
            let item = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if self.stop.load(Ordering::Relaxed) {
                        return;
                    }
                    if let Some(item) = q.pop_front() {
                        break item;
                    }
                    q = self.queue_cv.wait(q).unwrap();
                }
            };
            let label = {
                let jobs = self.jobs.lock().unwrap();
                jobs.get(&item.job)
                    .map(|j| j.entries[item.idx].label.clone())
                    .unwrap_or_default()
            };
            self.set_entry_state(
                item.job,
                item.idx,
                EntryState::Running,
                Json::obj(vec![
                    ("event".into(), Json::str("running")),
                    ("label".into(), Json::str(&label)),
                ]),
            );
            let start = Instant::now();
            let (r, provenance) = self.resolve(&item.req);
            let wall_ms = start.elapsed().as_millis() as u64;
            let (fingerprint, ipns) = (r.fingerprint(), r.throughput_ipns());
            self.set_entry_state(
                item.job,
                item.idx,
                EntryState::Done {
                    provenance,
                    wall_ms,
                    fingerprint,
                    ipns,
                },
                Json::obj(vec![
                    ("event".into(), Json::str("done")),
                    ("label".into(), Json::str(&label)),
                    ("provenance".into(), Json::str(provenance)),
                    ("wall_ms".into(), Json::U64(wall_ms)),
                    (
                        "fingerprint".into(),
                        Json::str(format!("{fingerprint:016x}")),
                    ),
                ]),
            );
        }
    }
}

/// The experiment server. [`Server::bind`] starts the worker pool;
/// [`Server::run`] serves connections until a `shutdown` command.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start the worker pool. `store` is consulted before simulating
    /// and receives every computed result.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        store: Option<Arc<dyn ResultStore>>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        // Same nested-parallelism budget composition as
        // Harness::execute: each simulation may use up to node_workers()
        // lane threads, so the pool takes its share of the budget.
        let workers = piranha_parsim::sweep_share(cfg.threads.max(1), node_workers());
        let state = Arc::new(ServerState {
            cache: SharedCache::new(),
            store,
            jobs: Mutex::new(HashMap::new()),
            job_cv: Condvar::new(),
            next_job: AtomicUsize::new(1),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            workers,
            executed: AtomicUsize::new(0),
            store_hits: AtomicUsize::new(0),
            mem_hits: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || state.worker_loop())
            })
            .collect();
        Ok(Server {
            listener,
            state,
            workers: handles,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve connections until a client sends `shutdown`. Each
    /// connection is handled on its own thread; worker threads are
    /// joined before returning.
    pub fn run(mut self) {
        for stream in self.listener.incoming() {
            if self.state.stop.load(Ordering::Relaxed) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&self.state);
            let addr = self.local_addr().ok();
            std::thread::spawn(move || {
                let _ = handle_conn(stream, &state);
                // After a shutdown command, poke the accept loop so it
                // observes the stop flag instead of blocking forever.
                if state.stop.load(Ordering::Relaxed) {
                    state.queue_cv.notify_all();
                    if let Some(addr) = addr {
                        let _ = TcpStream::connect(addr);
                    }
                }
            });
        }
        self.state.queue_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn respond(out: &mut impl Write, v: Json) -> std::io::Result<()> {
    writeln!(out, "{v}")?;
    out.flush()
}

fn error(msg: impl Into<String>) -> Json {
    Json::obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::str(msg)),
    ])
}

fn handle_conn(stream: TcpStream, state: &ServerState) -> std::io::Result<()> {
    // Response lines are small; without NODELAY, Nagle + delayed ACK
    // turns each round trip into a ~40 ms stall.
    stream.set_nodelay(true)?;
    let mut out = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let req = match Json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                respond(&mut out, error(format!("bad request: {e}")))?;
                continue;
            }
        };
        let cmd = req.get("cmd").and_then(Json::as_str).unwrap_or("");
        match cmd {
            "ping" => respond(
                &mut out,
                Json::obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("pong".into(), Json::Bool(true)),
                    ("schema".into(), Json::U64(SCHEMA_VERSION)),
                    ("workers".into(), Json::U64(state.workers as u64)),
                ]),
            )?,
            "submit" => {
                let v = submit(state, &req);
                respond(&mut out, v)?;
            }
            "status" => {
                let v = status(state, &req);
                respond(&mut out, v)?;
            }
            "watch" => watch(state, &req, &mut out)?,
            "stats" => respond(
                &mut out,
                Json::obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    (
                        "jobs".into(),
                        Json::U64(state.jobs.lock().unwrap().len() as u64),
                    ),
                    (
                        "executed".into(),
                        Json::U64(state.executed.load(Ordering::Relaxed) as u64),
                    ),
                    (
                        "store_hits".into(),
                        Json::U64(state.store_hits.load(Ordering::Relaxed) as u64),
                    ),
                    (
                        "memory_hits".into(),
                        Json::U64(state.mem_hits.load(Ordering::Relaxed) as u64),
                    ),
                    ("cache_entries".into(), Json::U64(state.cache.len() as u64)),
                    ("workers".into(), Json::U64(state.workers as u64)),
                ]),
            )?,
            "shutdown" => {
                state.stop.store(true, Ordering::Relaxed);
                respond(
                    &mut out,
                    Json::obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("stopping".into(), Json::Bool(true)),
                    ]),
                )?;
                return Ok(());
            }
            other => respond(&mut out, error(format!("unknown command {other:?}")))?,
        }
    }
    Ok(())
}

fn submit(state: &ServerState, req: &Json) -> Json {
    let Some(plan) = req.get("plan").and_then(Json::as_arr) else {
        return error("submit needs a 'plan' array of run specs");
    };
    if plan.is_empty() {
        return error("submit plan is empty");
    }
    let mut resolved = Vec::with_capacity(plan.len());
    for item in plan {
        let spec = match RunSpec::from_json(item) {
            Ok(s) => s,
            Err(e) => return error(e),
        };
        match spec.resolve() {
            Ok(r) => resolved.push((spec, r)),
            Err(e) => return error(e),
        }
    }
    let job_id = state.next_job.fetch_add(1, Ordering::Relaxed) as u64;
    let mut job = Job::default();
    let mut items = Vec::new();
    let mut cached = 0usize;
    for (idx, (spec, req)) in resolved.into_iter().enumerate() {
        let key = req.key();
        let label = spec.label();
        // Already resolved in memory: answer instantly, no queueing.
        if let Some(r) = state.cache.lookup(&key) {
            state.mem_hits.fetch_add(1, Ordering::Relaxed);
            cached += 1;
            job.done += 1;
            job.entries.push(Entry {
                label: label.clone(),
                key,
                state: EntryState::Done {
                    provenance: "memory",
                    wall_ms: 0,
                    fingerprint: r.fingerprint(),
                    ipns: r.throughput_ipns(),
                },
            });
            job.events.push(
                Json::obj(vec![
                    ("event".into(), Json::str("done")),
                    ("label".into(), Json::str(&label)),
                    ("provenance".into(), Json::str("memory")),
                    ("wall_ms".into(), Json::U64(0)),
                    (
                        "fingerprint".into(),
                        Json::str(format!("{:016x}", r.fingerprint())),
                    ),
                ])
                .to_string(),
            );
            continue;
        }
        job.events.push(
            Json::obj(vec![
                ("event".into(), Json::str("queued")),
                ("label".into(), Json::str(&label)),
            ])
            .to_string(),
        );
        job.entries.push(Entry {
            label,
            key,
            state: EntryState::Queued,
        });
        items.push(WorkItem {
            job: job_id,
            idx,
            req,
        });
    }
    let total = job.entries.len();
    state.jobs.lock().unwrap().insert(job_id, job);
    state.job_cv.notify_all();
    if !items.is_empty() {
        let mut q = state.queue.lock().unwrap();
        q.extend(items);
        drop(q);
        state.queue_cv.notify_all();
    }
    Json::obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("job".into(), Json::U64(job_id)),
        ("total".into(), Json::U64(total as u64)),
        ("cached".into(), Json::U64(cached as u64)),
    ])
}

fn status(state: &ServerState, req: &Json) -> Json {
    let Some(job_id) = req.get("job").and_then(Json::as_u64) else {
        return error("status needs a 'job' id");
    };
    let jobs = state.jobs.lock().unwrap();
    let Some(job) = jobs.get(&job_id) else {
        return error(format!("unknown job {job_id}"));
    };
    Json::obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("job".into(), Json::U64(job_id)),
        ("state".into(), Json::str(job.state())),
        ("total".into(), Json::U64(job.entries.len() as u64)),
        ("done".into(), Json::U64(job.done as u64)),
        ("rows".into(), job.rows()),
    ])
}

/// Stream a job's progress events (replaying history first), ending
/// with a `job_done` line once every entry completes.
fn watch(state: &ServerState, req: &Json, out: &mut impl Write) -> std::io::Result<()> {
    let Some(job_id) = req.get("job").and_then(Json::as_u64) else {
        return respond(out, error("watch needs a 'job' id"));
    };
    let mut sent = 0usize;
    loop {
        let (batch, finished) = {
            let mut jobs = state.jobs.lock().unwrap();
            loop {
                let Some(job) = jobs.get(&job_id) else {
                    drop(jobs);
                    return respond(out, error(format!("unknown job {job_id}")));
                };
                let finished = job.done == job.entries.len();
                if job.events.len() > sent || finished {
                    break (job.events[sent..].to_vec(), finished);
                }
                jobs = state.job_cv.wait(jobs).unwrap();
            }
        };
        for line in &batch {
            writeln!(out, "{line}")?;
        }
        sent += batch.len();
        out.flush()?;
        if finished {
            let jobs = state.jobs.lock().unwrap();
            // Events can land between snapshot and finish; drain them.
            if jobs.get(&job_id).is_some_and(|j| j.events.len() > sent) {
                continue;
            }
            drop(jobs);
            return respond(
                out,
                Json::obj(vec![
                    ("event".into(), Json::str("job_done")),
                    ("job".into(), Json::U64(job_id)),
                ]),
            );
        }
    }
}
