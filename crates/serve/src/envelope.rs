//! The versioned JSON envelope a [`RunResult`] is persisted in.
//!
//! The envelope is a single JSON document per store entry carrying:
//!
//! - `v` — the envelope schema version ([`SCHEMA_VERSION`]); entries
//!   with a different version are rejected (recompute, never panic);
//! - `stamp` — the build stamp ([`build_stamp`]): a hash of the schema
//!   version and the checked-in golden-fingerprint table. Any change to
//!   the simulator that moves a golden fingerprint re-blesses that
//!   table, changes the stamp, and thereby invalidates every persisted
//!   entry of the old build — stale results from an incompatible
//!   simulator are rejected at load instead of silently served;
//! - `key` — the full harness cache key, so a content-address collision
//!   (or a foreign file) is detected by comparison, not trusted;
//! - `fingerprint` — the result's [`RunResult::fingerprint`], which
//!   [`decode`] recomputes from the decoded fields and compares, making
//!   every load an integrity check;
//! - `result` — the fields themselves.
//!
//! Every `f64` that participates in the fingerprint (the page-hit rate,
//! the availability slowdown, the sample-estimate statistics) travels as
//! its `to_bits()` integer, so the round trip is bit-exact by
//! construction rather than by printing heroics.

use std::collections::BTreeMap;

use piranha_cpu::stats::STALL_KINDS;
use piranha_cpu::CoreStats;
use piranha_faults::{AvailabilityReport, FaultKind};
use piranha_kernel::Histogram;
use piranha_probe::{MetricValue, MetricsSnapshot};
use piranha_sample::SampleEstimate;
use piranha_system::RunResult;
use piranha_traffic::{TrafficLedger, TrafficSummary};
use piranha_types::time::Clock;
use piranha_types::Duration;

use crate::json::Json;

/// Envelope schema version; bump when the field layout changes.
pub const SCHEMA_VERSION: u64 = 1;

/// The golden-fingerprint table this build was blessed against. Baked
/// into the binary so the store stamp moves with every behavioural
/// change to the simulator (any such change re-blesses the table).
const GOLDEN_TABLE: &str = include_str!("../../../tests/golden_fingerprints.tsv");

/// FNV-1a over `bytes`, the same hash the fingerprint uses.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The build stamp persisted entries are guarded by: a hash of the
/// schema version and the golden-fingerprint table. Two builds share a
/// stamp exactly when they agree on the envelope layout *and* on the
/// bit-exact behaviour of the simulator (as certified by the goldens).
pub fn build_stamp() -> u64 {
    fnv1a(format!("piranha-serve/v{SCHEMA_VERSION}|{GOLDEN_TABLE}").as_bytes())
}

/// A decoded store entry: the cache key it was saved under and the
/// reconstructed result.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// The full harness cache key of the run.
    pub key: String,
    /// The reconstructed result, fingerprint-verified.
    pub result: RunResult,
}

/// Encode one result as the JSON envelope text (one document, no
/// trailing newline).
pub fn encode(key: &str, r: &RunResult) -> String {
    Json::obj(vec![
        ("v".into(), Json::U64(SCHEMA_VERSION)),
        ("stamp".into(), Json::U64(build_stamp())),
        ("key".into(), Json::str(key)),
        ("fingerprint".into(), Json::U64(r.fingerprint())),
        ("result".into(), result_to_json(r)),
    ])
    .to_string()
}

/// Decode an envelope, verifying version, build stamp, and fingerprint.
///
/// # Errors
///
/// Describes the first structural, versioning, or integrity problem;
/// callers on the load path treat any error as a cache miss.
pub fn decode(text: &str) -> Result<Envelope, String> {
    let v = Json::parse(text)?;
    let version = field_u64(&v, "v")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema version {version} (this build reads {SCHEMA_VERSION})"
        ));
    }
    let stamp = field_u64(&v, "stamp")?;
    if stamp != build_stamp() {
        return Err("entry written by an incompatible build (stamp mismatch)".into());
    }
    let key = field_str(&v, "key")?.to_string();
    let fingerprint = field_u64(&v, "fingerprint")?;
    let result = result_from_json(
        v.get("result")
            .ok_or_else(|| "missing field 'result'".to_string())?,
    )?;
    if result.fingerprint() != fingerprint {
        return Err("fingerprint mismatch after decode (corrupt entry)".into());
    }
    Ok(Envelope { key, result })
}

fn result_to_json(r: &RunResult) -> Json {
    Json::obj(vec![
        ("name".into(), Json::str(&r.name)),
        ("window_ps".into(), Json::U64(r.window.as_ps())),
        ("clock_mhz".into(), Json::U64(r.clock.mhz())),
        (
            "page_hit_bits".into(),
            Json::U64(r.mem_page_hit_rate.to_bits()),
        ),
        (
            "committed_txns".into(),
            r.committed_txns.map_or(Json::Null, Json::U64),
        ),
        (
            "cpus".into(),
            Json::arr(r.cpus.iter().map(core_to_json).collect()),
        ),
        ("metrics".into(), metrics_to_json(&r.metrics)),
        ("availability".into(), availability_to_json(&r.availability)),
        (
            "sample".into(),
            r.sample.as_ref().map_or(Json::Null, sample_to_json),
        ),
        (
            "traffic".into(),
            r.traffic.as_ref().map_or(Json::Null, traffic_to_json),
        ),
    ])
}

fn result_from_json(v: &Json) -> Result<RunResult, String> {
    let clock_mhz = field_u64(v, "clock_mhz")?;
    if clock_mhz == 0 || 1_000_000 % clock_mhz != 0 {
        return Err(format!("bad clock frequency {clock_mhz} MHz"));
    }
    let cpus = v
        .get("cpus")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing field 'cpus'".to_string())?
        .iter()
        .map(core_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(RunResult {
        name: field_str(v, "name")?.to_string(),
        window: Duration::from_ps(field_u64(v, "window_ps")?),
        clock: Clock::from_mhz(clock_mhz),
        cpus,
        mem_page_hit_rate: f64::from_bits(field_u64(v, "page_hit_bits")?),
        metrics: metrics_from_json(
            v.get("metrics")
                .ok_or_else(|| "missing field 'metrics'".to_string())?,
        )?,
        availability: availability_from_json(
            v.get("availability")
                .ok_or_else(|| "missing field 'availability'".to_string())?,
        )?,
        committed_txns: opt_u64(v, "committed_txns")?,
        sample: match v.get("sample") {
            None | Some(Json::Null) => None,
            Some(s) => Some(sample_from_json(s)?),
        },
        traffic: match v.get("traffic") {
            None | Some(Json::Null) => None,
            Some(t) => Some(traffic_from_json(t)?),
        },
    })
}

fn core_to_json(c: &CoreStats) -> Json {
    Json::obj(vec![
        ("instrs".into(), Json::U64(c.instrs)),
        (
            "stalls".into(),
            Json::arr(c.stall_cycles.iter().map(|&n| Json::U64(n)).collect()),
        ),
        ("branch".into(), Json::U64(c.branch_penalty_cycles)),
        ("sb_full".into(), Json::U64(c.sb_full_cycles)),
        ("l1i_miss".into(), Json::U64(c.l1i_misses)),
        ("l1d_miss".into(), Json::U64(c.l1d_misses)),
        ("sb_reqs".into(), Json::U64(c.sb_reqs)),
        ("l1_hits".into(), Json::U64(c.l1_hits)),
        ("tlb".into(), Json::U64(c.tlb_miss_cycles)),
        (
            "fills".into(),
            Json::arr(c.fills.iter().map(|&n| Json::U64(n)).collect()),
        ),
    ])
}

fn core_from_json(v: &Json) -> Result<CoreStats, String> {
    Ok(CoreStats {
        instrs: field_u64(v, "instrs")?,
        stall_cycles: u64_array(v, "stalls")?,
        branch_penalty_cycles: field_u64(v, "branch")?,
        sb_full_cycles: field_u64(v, "sb_full")?,
        l1i_misses: field_u64(v, "l1i_miss")?,
        l1d_misses: field_u64(v, "l1d_miss")?,
        sb_reqs: field_u64(v, "sb_reqs")?,
        l1_hits: field_u64(v, "l1_hits")?,
        tlb_miss_cycles: field_u64(v, "tlb")?,
        fills: u64_array(v, "fills")?,
    })
}

fn metrics_to_json(m: &MetricsSnapshot) -> Json {
    // Each row is [name, kind, payload]; gauges carry their bits so the
    // snapshot survives bit-exactly even though it is outside the
    // fingerprint.
    Json::arr(
        m.entries
            .iter()
            .map(|(name, value)| {
                let (kind, payload) = match value {
                    MetricValue::Count(n) => ("count", *n),
                    MetricValue::Value(x) => ("value", x.to_bits()),
                };
                Json::arr(vec![Json::str(name), Json::str(kind), Json::U64(payload)])
            })
            .collect(),
    )
}

fn metrics_from_json(v: &Json) -> Result<MetricsSnapshot, String> {
    let rows = v
        .as_arr()
        .ok_or_else(|| "metrics must be an array".to_string())?;
    let mut entries = Vec::with_capacity(rows.len());
    for row in rows {
        let row = row
            .as_arr()
            .filter(|r| r.len() == 3)
            .ok_or_else(|| "metric row must be [name, kind, payload]".to_string())?;
        let name = row[0]
            .as_str()
            .ok_or_else(|| "metric name must be a string".to_string())?;
        let payload = row[2]
            .as_u64()
            .ok_or_else(|| "metric payload must be an integer".to_string())?;
        let value = match row[1].as_str() {
            Some("count") => MetricValue::Count(payload),
            Some("value") => MetricValue::Value(f64::from_bits(payload)),
            other => return Err(format!("unknown metric kind {other:?}")),
        };
        entries.push((name.to_string(), value));
    }
    Ok(MetricsSnapshot::from_entries(entries))
}

fn availability_to_json(a: &AvailabilityReport) -> Json {
    Json::obj(vec![
        ("injected".into(), Json::U64(a.injected)),
        ("corrected".into(), Json::U64(a.corrected)),
        ("escalated".into(), Json::U64(a.escalated)),
        ("retransmits".into(), Json::U64(a.retransmits)),
        ("recovery_cycles".into(), Json::U64(a.recovery_cycles)),
        (
            "by_kind".into(),
            Json::obj(
                a.by_kind
                    .iter()
                    .map(|(k, &n)| (k.token().to_string(), Json::U64(n)))
                    .collect(),
            ),
        ),
        (
            "slowdown_bits".into(),
            a.slowdown.map_or(Json::Null, |x| Json::U64(x.to_bits())),
        ),
    ])
}

fn availability_from_json(v: &Json) -> Result<AvailabilityReport, String> {
    let mut by_kind = BTreeMap::new();
    for (token, count) in v
        .get("by_kind")
        .and_then(Json::as_obj)
        .ok_or_else(|| "missing field 'by_kind'".to_string())?
    {
        let kind = FaultKind::from_token(token)
            .ok_or_else(|| format!("unknown fault kind token {token:?}"))?;
        let n = count
            .as_u64()
            .ok_or_else(|| "fault count must be an integer".to_string())?;
        by_kind.insert(kind, n);
    }
    Ok(AvailabilityReport {
        injected: field_u64(v, "injected")?,
        corrected: field_u64(v, "corrected")?,
        escalated: field_u64(v, "escalated")?,
        retransmits: field_u64(v, "retransmits")?,
        recovery_cycles: field_u64(v, "recovery_cycles")?,
        by_kind,
        slowdown: opt_u64(v, "slowdown_bits")?.map(f64::from_bits),
    })
}

fn sample_to_json(s: &SampleEstimate) -> Json {
    Json::obj(vec![
        ("cpi_mean_bits".into(), Json::U64(s.cpi_mean.to_bits())),
        ("cpi_ci95_bits".into(), Json::U64(s.cpi_ci95.to_bits())),
        ("stall_mean_bits".into(), Json::U64(s.stall_mean.to_bits())),
        ("stall_ci_bits".into(), Json::U64(s.stall_ci.to_bits())),
        ("windows".into(), Json::U64(s.windows)),
        (
            "detailed_fraction_bits".into(),
            Json::U64(s.detailed_fraction.to_bits()),
        ),
        ("detailed_instrs".into(), Json::U64(s.detailed_instrs)),
        ("warmed_instrs".into(), Json::U64(s.warmed_instrs)),
    ])
}

fn sample_from_json(v: &Json) -> Result<SampleEstimate, String> {
    Ok(SampleEstimate {
        cpi_mean: f64::from_bits(field_u64(v, "cpi_mean_bits")?),
        cpi_ci95: f64::from_bits(field_u64(v, "cpi_ci95_bits")?),
        stall_mean: f64::from_bits(field_u64(v, "stall_mean_bits")?),
        stall_ci: f64::from_bits(field_u64(v, "stall_ci_bits")?),
        windows: field_u64(v, "windows")?,
        detailed_fraction: f64::from_bits(field_u64(v, "detailed_fraction_bits")?),
        detailed_instrs: field_u64(v, "detailed_instrs")?,
        warmed_instrs: field_u64(v, "warmed_instrs")?,
    })
}

fn traffic_to_json(t: &TrafficSummary) -> Json {
    Json::obj(vec![
        ("generated".into(), Json::U64(t.ledger.generated)),
        ("accepted".into(), Json::U64(t.ledger.accepted)),
        ("dropped".into(), Json::U64(t.ledger.dropped)),
        ("deferred".into(), Json::U64(t.ledger.deferred)),
        ("completed".into(), Json::U64(t.ledger.completed)),
        (
            "lat_buckets".into(),
            Json::arr(
                t.latency
                    .bucket_counts()
                    .iter()
                    .map(|&n| Json::U64(n))
                    .collect(),
            ),
        ),
        ("lat_count".into(), Json::U64(t.latency.count())),
        ("lat_sum_ns".into(), Json::U64(t.latency.sum_ns())),
        ("lat_max_ns".into(), Json::U64(t.latency.max_ns())),
    ])
}

fn traffic_from_json(v: &Json) -> Result<TrafficSummary, String> {
    let buckets = v
        .get("lat_buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing field 'lat_buckets'".to_string())?
        .iter()
        .map(|b| {
            b.as_u64()
                .ok_or_else(|| "latency bucket must be an integer".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(TrafficSummary {
        ledger: TrafficLedger {
            generated: field_u64(v, "generated")?,
            accepted: field_u64(v, "accepted")?,
            dropped: field_u64(v, "dropped")?,
            deferred: field_u64(v, "deferred")?,
            completed: field_u64(v, "completed")?,
        },
        latency: Histogram::from_parts(
            buckets,
            field_u64(v, "lat_count")?,
            field_u64(v, "lat_sum_ns")?,
            field_u64(v, "lat_max_ns")?,
        ),
    })
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing/invalid integer field {key:?}"))
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be an integer or null")),
    }
}

fn field_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing/invalid string field {key:?}"))
}

fn u64_array(v: &Json, key: &str) -> Result<[u64; STALL_KINDS], String> {
    let items = v
        .get(key)
        .and_then(Json::as_arr)
        .filter(|a| a.len() == STALL_KINDS)
        .ok_or_else(|| format!("field {key:?} must be an array of {STALL_KINDS}"))?;
    let mut out = [0u64; STALL_KINDS];
    for (slot, item) in out.iter_mut().zip(items) {
        *slot = item
            .as_u64()
            .ok_or_else(|| format!("field {key:?} must hold integers"))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use piranha_types::FillSource;

    fn sample_result() -> RunResult {
        let mut c = CoreStats {
            instrs: 123_456,
            branch_penalty_cycles: 77,
            l1_hits: 999,
            ..Default::default()
        };
        c.record_fill(FillSource::L2Hit, 100);
        c.record_fill(FillSource::RemoteMem, 313);
        let mut r = RunResult::new(
            "p8".into(),
            Duration::from_ns(12_345),
            Clock::from_mhz(500),
            vec![c.clone(), c],
        );
        r.mem_page_hit_rate = 0.1 + 0.2; // deliberately non-representable
        r.committed_txns = Some(42);
        r.metrics = MetricsSnapshot::from_entries(vec![
            ("a.count".into(), MetricValue::Count(u64::MAX)),
            ("b.gauge".into(), MetricValue::Value(0.3 - 0.1)),
        ]);
        r.availability.injected = 3;
        r.availability.corrected = 2;
        r.availability.escalated = 1;
        r.availability.by_kind.insert(FaultKind::LinkFlap, 2);
        r.availability.by_kind.insert(FaultKind::MemFlipDouble, 1);
        r.availability.slowdown = Some(1.0625);
        r.sample = Some(SampleEstimate {
            cpi_mean: 1.5,
            cpi_ci95: 0.1,
            stall_mean: 0.25,
            stall_ci: 0.01,
            windows: 9,
            detailed_fraction: 0.05,
            detailed_instrs: 5_000,
            warmed_instrs: 95_000,
        });
        let mut latency = Histogram::new();
        latency.record(Duration::from_ns(100));
        latency.record(Duration::from_ns(20_000));
        r.traffic = Some(TrafficSummary {
            ledger: TrafficLedger {
                generated: 10,
                accepted: 9,
                dropped: 1,
                deferred: 0,
                completed: 9,
            },
            latency,
        });
        r
    }

    #[test]
    fn envelope_round_trips_bit_exactly() {
        let r = sample_result();
        let text = encode("some|key", &r);
        let env = decode(&text).expect("decodes");
        assert_eq!(env.key, "some|key");
        let back = env.result;
        assert_eq!(back.fingerprint(), r.fingerprint());
        assert_eq!(back.name, r.name);
        assert_eq!(back.window, r.window);
        assert_eq!(back.clock, r.clock);
        assert_eq!(
            back.mem_page_hit_rate.to_bits(),
            r.mem_page_hit_rate.to_bits()
        );
        assert_eq!(back.committed_txns, r.committed_txns);
        assert_eq!(format!("{:?}", back.cpus), format!("{:?}", r.cpus));
        assert_eq!(back.metrics.entries, r.metrics.entries);
        assert_eq!(back.availability, r.availability);
        let (bs, rs) = (back.sample.unwrap(), r.sample.unwrap());
        assert_eq!(bs.cpi_mean.to_bits(), rs.cpi_mean.to_bits());
        assert_eq!(bs.windows, rs.windows);
        let (bt, rt) = (back.traffic.unwrap(), r.traffic.unwrap());
        assert_eq!(bt.ledger, rt.ledger);
        assert_eq!(bt.latency.bucket_counts(), rt.latency.bucket_counts());
        assert_eq!(bt.latency.p99_ns(), rt.latency.p99_ns());
    }

    #[test]
    fn minimal_result_round_trips() {
        let r = RunResult::new(
            "bare".into(),
            Duration::from_ns(1),
            Clock::from_mhz(1000),
            vec![CoreStats::default()],
        );
        let env = decode(&encode("k", &r)).unwrap();
        assert_eq!(env.result.fingerprint(), r.fingerprint());
        assert!(env.result.sample.is_none());
        assert!(env.result.traffic.is_none());
        assert!(env.result.committed_txns.is_none());
    }

    #[test]
    fn rejects_wrong_version_stamp_and_corruption() {
        let r = sample_result();
        let good = encode("k", &r);

        let bad_version = good.replacen(
            &format!("\"v\":{SCHEMA_VERSION}"),
            &format!("\"v\":{}", SCHEMA_VERSION + 1),
            1,
        );
        assert!(decode(&bad_version).unwrap_err().contains("version"));

        let stamp = build_stamp();
        let bad_stamp = good.replacen(
            &format!("\"stamp\":{stamp}"),
            &format!("\"stamp\":{}", stamp ^ 1),
            1,
        );
        assert!(decode(&bad_stamp).unwrap_err().contains("stamp"));

        // Flipping a simulated field breaks the fingerprint check.
        let tampered = good.replacen("\"instrs\":123456", "\"instrs\":123457", 1);
        assert!(decode(&tampered).unwrap_err().contains("fingerprint"));

        // Truncation is a parse error, not a panic.
        assert!(decode(&good[..good.len() / 2]).is_err());
        assert!(decode("").is_err());
        assert!(decode("not json at all").is_err());
    }

    #[test]
    fn stamp_is_stable_within_a_build() {
        assert_eq!(build_stamp(), build_stamp());
        assert_ne!(build_stamp(), 0);
    }
}
