//! The structured trace ring buffer.
//!
//! Every record is a cycle-stamped (picosecond-stamped — the simulator's
//! global clock) span or instant with a static category and name, an
//! integer track (rendered as a Chrome-trace "thread"), and one numeric
//! argument. Recording is gated twice:
//!
//! * **compile time**: without the crate's `trace` feature every
//!   recording call compiles to nothing;
//! * **run time**: a [`TraceLevel`] stored in the buffer; recording at a
//!   level above the configured one is a single relaxed atomic load.
//!
//! The buffer is bounded: once `capacity` events are held, further
//! records are counted in `dropped` instead of growing memory, so a
//! full-scale run can be traced with a fixed footprint.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// How much the probe records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Record nothing.
    #[default]
    Off = 0,
    /// Record begin/end spans of subsystem work (the normal setting).
    Spans = 1,
    /// Additionally record fine-grained instants (per-message, per-fill).
    Verbose = 2,
}

impl TraceLevel {
    fn from_u8(v: u8) -> TraceLevel {
        match v {
            0 => TraceLevel::Off,
            1 => TraceLevel::Spans,
            _ => TraceLevel::Verbose,
        }
    }
}

impl std::str::FromStr for TraceLevel {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(TraceLevel::Off),
            "spans" | "on" => Ok(TraceLevel::Spans),
            "verbose" => Ok(TraceLevel::Verbose),
            other => Err(format!("unknown trace level {other:?} (off|spans|verbose)")),
        }
    }
}

/// One recorded event. `dur_ps == 0` renders as an instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start timestamp, picoseconds of simulated time.
    pub ts_ps: u64,
    /// Span length in picoseconds (0 = instant).
    pub dur_ps: u64,
    /// Subsystem category (`"cpu"`, `"cache"`, `"protocol"`, `"net"`, …).
    pub cat: &'static str,
    /// Event name within the category.
    pub name: &'static str,
    /// Track (Chrome-trace thread) the event belongs to.
    pub track: u32,
    /// One numeric payload (line address, request id, byte count…).
    pub arg: u64,
}

/// The bounded, cycle-stamped trace buffer.
#[derive(Debug)]
pub struct TraceBuffer {
    level: AtomicU8,
    capacity: usize,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
    tracks: Mutex<Vec<(u32, String)>>,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events at `level`.
    pub fn new(level: TraceLevel, capacity: usize) -> Self {
        TraceBuffer {
            level: AtomicU8::new(level as u8),
            capacity,
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            tracks: Mutex::new(Vec::new()),
        }
    }

    /// The current runtime level.
    pub fn level(&self) -> TraceLevel {
        TraceLevel::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// Change the runtime level mid-run.
    pub fn set_level(&self, level: TraceLevel) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    /// Whether records at `level` are currently kept.
    #[inline]
    pub fn enabled(&self, level: TraceLevel) -> bool {
        self.level.load(Ordering::Relaxed) >= level as u8
    }

    /// Name a track for the exporters (idempotent per id; the last name
    /// wins).
    pub fn name_track(&self, track: u32, name: impl Into<String>) {
        let mut tracks = self.tracks.lock().unwrap();
        let name = name.into();
        if let Some(t) = tracks.iter_mut().find(|(id, _)| *id == track) {
            t.1 = name;
        } else {
            tracks.push((track, name));
        }
    }

    /// Record one event (level already checked by the caller).
    pub fn record(&self, ev: TraceEvent) {
        let mut events = self.events.lock().unwrap();
        if events.len() < self.capacity {
            events.push(ev);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events dropped after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone out the buffered events and track names.
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            events: self.events.lock().unwrap().clone(),
            tracks: self.tracks.lock().unwrap().clone(),
            dropped: self.dropped(),
        }
    }
}

/// An immutable copy of a trace buffer's contents.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// The recorded events, in recording order.
    pub events: Vec<TraceEvent>,
    /// `(track id, label)` pairs for the exporters.
    pub tracks: Vec<(u32, String)>,
    /// Events dropped because the ring was full.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// The distinct categories present, sorted.
    pub fn categories(&self) -> Vec<&'static str> {
        let mut cats: Vec<&'static str> = self.events.iter().map(|e| e.cat).collect();
        cats.sort_unstable();
        cats.dedup();
        cats
    }

    /// Number of events in the snapshot.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the snapshot holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, cat: &'static str) -> TraceEvent {
        TraceEvent {
            ts_ps: ts,
            dur_ps: 10,
            cat,
            name: "x",
            track: 0,
            arg: 0,
        }
    }

    #[test]
    fn level_gates_enabled() {
        let b = TraceBuffer::new(TraceLevel::Spans, 10);
        assert!(b.enabled(TraceLevel::Spans));
        assert!(!b.enabled(TraceLevel::Verbose));
        b.set_level(TraceLevel::Off);
        assert!(!b.enabled(TraceLevel::Spans));
        assert_eq!(b.level(), TraceLevel::Off);
    }

    #[test]
    fn capacity_bounds_and_counts_drops() {
        let b = TraceBuffer::new(TraceLevel::Spans, 2);
        for i in 0..5 {
            b.record(ev(i, "cpu"));
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 3);
        let snap = b.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.dropped, 3);
    }

    #[test]
    fn categories_dedup() {
        let b = TraceBuffer::new(TraceLevel::Spans, 10);
        b.record(ev(0, "net"));
        b.record(ev(1, "cpu"));
        b.record(ev(2, "cpu"));
        assert_eq!(b.snapshot().categories(), vec!["cpu", "net"]);
    }

    #[test]
    fn track_naming_is_idempotent() {
        let b = TraceBuffer::new(TraceLevel::Spans, 10);
        b.name_track(7, "node0.cpu1");
        b.name_track(7, "node0.cpu1(renamed)");
        let snap = b.snapshot();
        assert_eq!(snap.tracks, vec![(7, "node0.cpu1(renamed)".to_string())]);
    }

    #[test]
    fn level_parses() {
        assert_eq!("spans".parse::<TraceLevel>().unwrap(), TraceLevel::Spans);
        assert_eq!("off".parse::<TraceLevel>().unwrap(), TraceLevel::Off);
        assert!("bogus".parse::<TraceLevel>().is_err());
    }
}
