//! Per-core stall attribution — the Figure 5 execution-time breakdown
//! as a first-class artifact.
//!
//! A [`StallTable`] splits each core's wall cycles over a fixed category
//! list (by convention the first category is `busy`, the rest are stall
//! reasons by service point). Fractions always sum to 1 per row: the
//! denominator is `max(wall cycles, attributed cycles)`, so a row can
//! never report more than 100% of its time.

/// One core's cycle attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct StallRow {
    /// Row label (e.g. `cpu3` or `all`).
    pub label: String,
    /// Cycles attributed to each category, same order as the table's
    /// category list.
    pub cycles: Vec<u64>,
    /// Wall cycles of the window for this row.
    pub total: u64,
}

impl StallRow {
    /// The per-category fractions; they sum to exactly 1 (±float error)
    /// whenever any cycles were attributed.
    pub fn fractions(&self) -> Vec<f64> {
        let attributed: u64 = self.cycles.iter().sum();
        let denom = self.total.max(attributed).max(1) as f64;
        let mut f: Vec<f64> = self.cycles.iter().map(|&c| c as f64 / denom).collect();
        // Attribute any unaccounted remainder to the first (busy)
        // category so the row is a complete partition of the window.
        let sum: f64 = f.iter().sum();
        if let Some(first) = f.first_mut() {
            *first += (1.0 - sum).max(0.0);
        }
        f
    }
}

/// A per-core cycle-attribution table.
///
/// # Examples
///
/// ```
/// use piranha_probe::StallTable;
/// let mut t = StallTable::new(&["busy", "l2_hit", "l2_miss"]);
/// t.push_row("cpu0", vec![700, 200, 100], 1000);
/// let f = t.rows[0].fractions();
/// assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// assert!((f[1] - 0.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StallTable {
    /// Category names; index-aligned with every row's `cycles`.
    pub categories: Vec<String>,
    /// Per-core rows (often plus an aggregate row).
    pub rows: Vec<StallRow>,
}

impl StallTable {
    /// An empty table over `categories` (first one should be `busy`).
    pub fn new(categories: &[&str]) -> Self {
        StallTable {
            categories: categories.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` does not match the category count.
    pub fn push_row(&mut self, label: impl Into<String>, cycles: Vec<u64>, total: u64) {
        assert_eq!(
            cycles.len(),
            self.categories.len(),
            "one cycle count per category"
        );
        self.rows.push(StallRow {
            label: label.into(),
            cycles,
            total,
        });
    }

    /// Whether every row's fractions sum to 1 within `tol`.
    pub fn sums_to_one(&self, tol: f64) -> bool {
        self.rows
            .iter()
            .all(|r| (r.fractions().iter().sum::<f64>() - 1.0).abs() <= tol)
    }

    /// Render as an aligned text table of percentages.
    pub fn render(&self) -> String {
        let mut out = String::from("stall attribution (fraction of wall cycles)\n");
        out.push_str(&format!("{:<10}", "core"));
        for c in &self.categories {
            out.push_str(&format!(" {c:>12}"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<10}", row.label));
            for f in row.fractions() {
                out.push_str(&format!(" {:>11.1}%", f * 100.0));
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (`core,<categories...>` header, fraction rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("core");
        for c in &self.categories {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.label);
            for f in row.fractions() {
                out.push_str(&format!(",{f}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_partition_the_window() {
        let mut t = StallTable::new(&["busy", "a", "b"]);
        t.push_row("cpu0", vec![500, 300, 200], 1000);
        t.push_row("cpu1", vec![0, 0, 0], 1000); // fully idle window
        t.push_row("cpu2", vec![100, 600, 600], 1000); // over-attributed
        assert!(t.sums_to_one(1e-9));
        let f2 = t.rows[2].fractions();
        assert!(
            (f2.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "over-attribution renormalizes"
        );
    }

    #[test]
    fn idle_row_attributes_everything_to_busy() {
        let mut t = StallTable::new(&["busy", "stall"]);
        t.push_row("cpu0", vec![0, 0], 100);
        let f = t.rows[0].fractions();
        assert_eq!(f[0], 1.0);
        assert_eq!(f[1], 0.0);
    }

    #[test]
    fn render_and_csv_contain_rows() {
        let mut t = StallTable::new(&["busy", "l2_hit"]);
        t.push_row("cpu0", vec![80, 20], 100);
        let txt = t.render();
        assert!(txt.contains("cpu0"));
        assert!(txt.contains("80.0%"));
        let csv = t.to_csv();
        assert!(csv.starts_with("core,busy,l2_hit\n"));
        assert!(csv.contains("cpu0,0.8,0.2"));
    }

    #[test]
    #[should_panic(expected = "per category")]
    fn mismatched_row_panics() {
        let mut t = StallTable::new(&["busy"]);
        t.push_row("x", vec![1, 2], 3);
    }
}
