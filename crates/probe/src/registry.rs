//! The central metric registry.
//!
//! Every subsystem registers hierarchically-named metrics (dots as
//! separators: `cpu.node0.core1.instrs`, `net.delivered`) and receives a
//! typed handle. Handles are cheap to clone and lock-free to update —
//! counters and gauges are a single relaxed atomic — so they can sit on
//! simulation hot paths; registration and snapshotting take a lock but
//! happen at setup and reporting time only.
//!
//! Two usage styles coexist:
//!
//! * **push**: hold a [`CounterHandle`]/[`GaugeHandle`]/[`HistogramHandle`]
//!   and update it as events happen;
//! * **pull**: a subsystem that already owns its authoritative counters
//!   (the one-source-of-truth rule) is *sampled* into the registry at
//!   snapshot time via [`MetricRegistry::publish_counter`] /
//!   [`MetricRegistry::publish_gauge`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A registered counter: a monotonically increasing `u64`.
///
/// The disabled (no-op) handle costs one branch per update, so handles
/// can be embedded unconditionally.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Option<Arc<AtomicU64>>);

impl CounterHandle {
    /// A handle that ignores updates (for probes that are switched off).
    pub fn noop() -> Self {
        CounterHandle(None)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Overwrite with an absolute value (pull-sampling).
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A registered gauge: an instantaneous `f64` (occupancy, rate, level).
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(Option<Arc<AtomicU64>>);

impl GaugeHandle {
    /// A handle that ignores updates.
    pub fn noop() -> Self {
        GaugeHandle(None)
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a no-op handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// Power-of-two-bucketed histogram state shared by handles and snapshots.
#[derive(Debug, Clone)]
pub struct HistogramCore {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramCore {
    fn record(&mut self, v: u64) {
        let b = if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        };
        self.buckets[b.min(63)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fold `other`'s samples into this histogram: bucket-wise sum, so
    /// the merge of two histograms reports exactly what one histogram
    /// fed both sample streams would have. Per-window and per-lane
    /// distributions aggregate into run totals this way.
    pub fn merge(&mut self, other: &HistogramCore) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Approximate percentile (0..=100), linearly interpolated within
    /// the containing power-of-two bucket (samples assumed uniform over
    /// the bucket's range) and clamped to the observed maximum; 0 for an
    /// empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if seen + b >= target {
                let (lo, hi) = bucket_bounds(i);
                let frac = (target - seen) as f64 / b as f64;
                let v = lo as f64 + frac * (hi - lo) as f64;
                return (v as u64).min(self.max);
            }
            seen += b;
        }
        self.max
    }

    /// Dump the non-empty buckets as a JSON object:
    /// `{"count":..,"sum":..,"max":..,"buckets":[{"lo":..,"hi":..,"count":..},..]}`.
    /// Bucket bounds are the nominal power-of-two ranges (half-open).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
            self.count, self.sum, self.max
        );
        let mut first = true;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let (lo, hi) = bucket_bounds(i);
            out.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{b}}}"));
        }
        out.push_str("]}");
        out
    }
}

/// The nominal half-open range `[lo, hi)` of bucket `i`: bucket 0 holds
/// zero-valued samples, bucket `i >= 1` holds `[2^(i-1), 2^i)`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 1)
    } else {
        (1u64 << (i - 1), 1u64 << i)
    }
}

/// A registered histogram of `u64` samples (latencies, sizes).
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Option<Arc<Mutex<HistogramCore>>>);

impl HistogramHandle {
    /// A handle that ignores updates.
    pub fn noop() -> Self {
        HistogramHandle(None)
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.lock().unwrap().record(v);
        }
    }

    /// A snapshot of the accumulated distribution.
    pub fn core(&self) -> HistogramCore {
        self.0
            .as_ref()
            .map_or_else(HistogramCore::default, |h| h.lock().unwrap().clone())
    }
}

/// The value of one metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter reading.
    Count(u64),
    /// A gauge reading.
    Value(f64),
}

impl MetricValue {
    /// The value as `f64` regardless of kind.
    pub fn as_f64(&self) -> f64 {
        match self {
            MetricValue::Count(c) => *c as f64,
            MetricValue::Value(v) => *v,
        }
    }

    /// The counter reading, if this is a counter.
    pub fn as_count(&self) -> Option<u64> {
        match self {
            MetricValue::Count(c) => Some(*c),
            MetricValue::Value(_) => None,
        }
    }
}

impl std::fmt::Display for MetricValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricValue::Count(c) => write!(f, "{c}"),
            MetricValue::Value(v) => write!(f, "{v}"),
        }
    }
}

#[derive(Debug)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Mutex<HistogramCore>>),
}

/// The registry: a name → metric map with typed registration.
///
/// # Examples
///
/// ```
/// use piranha_probe::MetricRegistry;
/// let reg = MetricRegistry::new();
/// let c = reg.register_counter("cache.node0.bank0.lookups");
/// c.add(3);
/// let snap = reg.snapshot();
/// assert_eq!(snap.get("cache.node0.bank0.lookups").unwrap().as_count(), Some(3));
/// ```
#[derive(Debug, Default)]
pub struct MetricRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or re-fetch) a counter. Registration is idempotent:
    /// the same name always resolves to the same underlying cell.
    pub fn register_counter(&self, name: &str) -> CounterHandle {
        let mut slots = self.slots.lock().unwrap();
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Counter(c) => CounterHandle(Some(Arc::clone(c))),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Register (or re-fetch) a gauge.
    pub fn register_gauge(&self, name: &str) -> GaugeHandle {
        let mut slots = self.slots.lock().unwrap();
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Gauge(g) => GaugeHandle(Some(Arc::clone(g))),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Register (or re-fetch) a histogram.
    pub fn register_histogram(&self, name: &str) -> HistogramHandle {
        let mut slots = self.slots.lock().unwrap();
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Arc::new(Mutex::new(HistogramCore::default()))));
        match slot {
            Slot::Histogram(h) => HistogramHandle(Some(Arc::clone(h))),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Pull-sample: store an absolute counter reading under `name`. The
    /// owning subsystem keeps the authoritative count; the registry only
    /// holds the latest sampled view.
    pub fn publish_counter(&self, name: &str, v: u64) {
        self.register_counter(name).set(v);
    }

    /// Pull-sample a gauge reading.
    pub fn publish_gauge(&self, name: &str, v: f64) {
        self.register_gauge(name).set(v);
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time reading of every metric, sorted by name.
    /// Histograms flatten into `<name>.count/.mean/.max/.p50/.p95/.p99`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.lock().unwrap();
        let mut entries = Vec::with_capacity(slots.len());
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => {
                    entries.push((name.clone(), MetricValue::Count(c.load(Ordering::Relaxed))))
                }
                Slot::Gauge(g) => entries.push((
                    name.clone(),
                    MetricValue::Value(f64::from_bits(g.load(Ordering::Relaxed))),
                )),
                Slot::Histogram(h) => {
                    let core = h.lock().unwrap();
                    entries.push((format!("{name}.count"), MetricValue::Count(core.count())));
                    entries.push((format!("{name}.mean"), MetricValue::Value(core.mean())));
                    entries.push((format!("{name}.max"), MetricValue::Count(core.max())));
                    for p in [50.0, 95.0, 99.0] {
                        entries.push((
                            format!("{name}.p{p:.0}"),
                            MetricValue::Count(core.percentile(p)),
                        ));
                    }
                }
            }
        }
        // Histogram flattening can emit out of name order (`.mean` sorts
        // after `.max`); from_entries restores the sorted invariant that
        // `get`'s binary search relies on.
        MetricsSnapshot::from_entries(entries)
    }
}

/// A flat, name-sorted reading of every metric at one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` rows, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// A snapshot assembled from explicit rows (sorted by name).
    pub fn from_entries(mut entries: Vec<(String, MetricValue)>) -> Self {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { entries }
    }

    /// Look a metric up by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// All rows whose name starts with `prefix`.
    pub fn with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = &'a (String, MetricValue)> {
        self.entries
            .iter()
            .filter(move |(n, _)| n.starts_with(prefix))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render as `name,value` CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (name, v) in &self.entries {
            out.push_str(name);
            out.push(',');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }

    /// Render as a flat JSON object (`{"name": value, ...}`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n  \"{}\": {}", crate::chrome::escape(name), v));
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = MetricRegistry::new();
        let c = reg.register_counter("a.b.c");
        c.inc();
        c.add(4);
        let g = reg.register_gauge("a.b.util");
        g.set(0.75);
        let snap = reg.snapshot();
        assert_eq!(snap.get("a.b.c"), Some(&MetricValue::Count(5)));
        assert_eq!(snap.get("a.b.util"), Some(&MetricValue::Value(0.75)));
        assert!(snap.get("missing").is_none());
    }

    #[test]
    fn registration_is_idempotent() {
        let reg = MetricRegistry::new();
        let a = reg.register_counter("x");
        let b = reg.register_counter("x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same cell behind both handles");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let reg = MetricRegistry::new();
        reg.register_counter("x");
        reg.register_gauge("x");
    }

    #[test]
    fn noop_handles_ignore_updates() {
        let c = CounterHandle::noop();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = GaugeHandle::noop();
        g.set(3.0);
        assert_eq!(g.get(), 0.0);
        let h = HistogramHandle::noop();
        h.record(5);
        assert_eq!(h.core().count(), 0);
    }

    #[test]
    fn publish_overwrites() {
        let reg = MetricRegistry::new();
        reg.publish_counter("sampled", 10);
        reg.publish_counter("sampled", 7);
        assert_eq!(reg.snapshot().get("sampled"), Some(&MetricValue::Count(7)));
    }

    #[test]
    fn histogram_flattens_into_snapshot() {
        let reg = MetricRegistry::new();
        let h = reg.register_histogram("lat");
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.get("lat.count"), Some(&MetricValue::Count(4)));
        assert_eq!(snap.get("lat.max"), Some(&MetricValue::Count(100)));
        let p99 = snap.get("lat.p99").unwrap().as_count().unwrap();
        assert!(p99 <= 100, "percentile clamped to max: {p99}");
    }

    #[test]
    fn histogram_merge_equals_single_stream() {
        let reg = MetricRegistry::new();
        let a = reg.register_histogram("a");
        let b = reg.register_histogram("b");
        let both = reg.register_histogram("both");
        for v in [1u64, 7, 130] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 9, 4096] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.core();
        merged.merge(&b.core());
        let reference = both.core();
        assert_eq!(merged.count(), reference.count());
        assert_eq!(merged.max(), reference.max());
        assert!((merged.mean() - reference.mean()).abs() < 1e-12);
        for p in [50.0, 95.0, 99.0] {
            assert_eq!(merged.percentile(p), reference.percentile(p));
        }
    }

    #[test]
    fn histogram_percentile_interpolates_within_bucket() {
        let mut core = HistogramCore::default();
        // 1000 uniform samples; the median resolves near 500, not at
        // the 1024 bucket edge.
        for v in 1..=1000u64 {
            core.record(v);
        }
        let p50 = core.percentile(50.0);
        assert!((450..=550).contains(&p50), "interpolated p50 was {p50}");
        let p99 = core.percentile(99.0);
        assert!((950..=1000).contains(&p99), "interpolated p99 was {p99}");
        assert_eq!(core.percentile(100.0), 1000, "p100 clamps to max");
    }

    #[test]
    fn histogram_to_json_dumps_populated_buckets() {
        let empty = HistogramCore::default();
        assert_eq!(
            empty.to_json(),
            "{\"count\":0,\"sum\":0,\"max\":0,\"buckets\":[]}"
        );
        let mut core = HistogramCore::default();
        core.record(3); // bucket [2, 4)
        core.record(100); // bucket [64, 128)
        core.record(100);
        assert_eq!(
            core.to_json(),
            "{\"count\":3,\"sum\":203,\"max\":100,\"buckets\":[\
             {\"lo\":2,\"hi\":4,\"count\":1},\
             {\"lo\":64,\"hi\":128,\"count\":2}]}"
        );
    }

    #[test]
    fn histogram_merge_with_empty_is_identity() {
        let reg = MetricRegistry::new();
        let h = reg.register_histogram("h");
        for v in [3u64, 5, 8] {
            h.record(v);
        }
        let mut merged = h.core();
        merged.merge(&HistogramCore::default());
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.max(), 8);
        let mut empty = HistogramCore::default();
        empty.merge(&h.core());
        assert_eq!(empty.count(), 3);
        assert!((empty.mean() - h.core().mean()).abs() < 1e-12);
    }

    #[test]
    fn snapshot_is_sorted_and_csv_renders() {
        let reg = MetricRegistry::new();
        reg.publish_counter("z.last", 1);
        reg.publish_counter("a.first", 2);
        let snap = reg.snapshot();
        assert!(snap.entries.windows(2).all(|w| w[0].0 <= w[1].0));
        let csv = snap.to_csv();
        assert!(csv.starts_with("metric,value\n"));
        assert!(csv.contains("a.first,2\n"));
        let json = snap.to_json();
        assert!(json.contains("\"z.last\": 1"));
    }

    #[test]
    fn prefix_query() {
        let reg = MetricRegistry::new();
        reg.publish_counter("cpu.node0.core0.instrs", 5);
        reg.publish_counter("cpu.node0.core1.instrs", 6);
        reg.publish_counter("net.delivered", 7);
        let snap = reg.snapshot();
        assert_eq!(snap.with_prefix("cpu.").count(), 2);
    }
}
