//! Chrome `trace_event` export.
//!
//! Serializes a [`TraceSnapshot`] into the JSON
//! object format consumed by Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing`: complete events (`"ph": "X"`) for spans, instant
//! events (`"ph": "i"`) for zero-duration records, plus `thread_name`
//! metadata for named tracks. Timestamps convert from the simulator's
//! picoseconds to the format's microseconds with fractional precision,
//! so nanosecond-scale spans stay distinguishable.

use crate::trace::TraceSnapshot;

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn ps_to_us(ps: u64) -> String {
    // 1 µs = 1e6 ps. Emit with full sub-µs precision and no float
    // rounding: integer part + 6-digit fraction.
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// Render `snap` as a Chrome-trace JSON document.
///
/// # Examples
///
/// ```
/// use piranha_probe::{chrome, TraceBuffer, TraceEvent, TraceLevel};
/// let buf = TraceBuffer::new(TraceLevel::Spans, 16);
/// buf.name_track(1, "node0.cpu0");
/// buf.record(TraceEvent {
///     ts_ps: 2_000_000, dur_ps: 500_000,
///     cat: "cpu", name: "step", track: 1, arg: 42,
/// });
/// let json = chrome::chrome_trace_json(&buf.snapshot());
/// assert!(json.contains("\"ph\":\"X\""));
/// assert!(json.contains("\"ts\":2.000000"));
/// ```
pub fn chrome_trace_json(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(64 + snap.events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, row: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&row);
    };
    push(
        &mut out,
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"piranha-sim\"}}"
            .to_string(),
    );
    for (id, label) in &snap.tracks {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{id},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                escape(label)
            ),
        );
    }
    for e in &snap.events {
        let row = if e.dur_ps == 0 {
            format!(
                "{{\"ph\":\"i\",\"pid\":0,\"tid\":{},\"ts\":{},\"s\":\"t\",\"cat\":\"{}\",\"name\":\"{}\",\"args\":{{\"v\":{}}}}}",
                e.track,
                ps_to_us(e.ts_ps),
                e.cat,
                e.name,
                e.arg
            )
        } else {
            format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":\"{}\",\"name\":\"{}\",\"args\":{{\"v\":{}}}}}",
                e.track,
                ps_to_us(e.ts_ps),
                ps_to_us(e.dur_ps),
                e.cat,
                e.name,
                e.arg
            )
        };
        push(&mut out, row);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceBuffer, TraceEvent, TraceLevel};

    fn sample() -> TraceSnapshot {
        let buf = TraceBuffer::new(TraceLevel::Verbose, 16);
        buf.name_track(0, "node0.cpu0");
        buf.name_track(1, "node0.\"quoted\"");
        buf.record(TraceEvent {
            ts_ps: 1_500_000,
            dur_ps: 250_000,
            cat: "cache",
            name: "bank.lookup",
            track: 0,
            arg: 7,
        });
        buf.record(TraceEvent {
            ts_ps: 2_000_000,
            dur_ps: 0,
            cat: "protocol",
            name: "msg",
            track: 1,
            arg: 9,
        });
        buf.snapshot()
    }

    #[test]
    fn spans_and_instants_render() {
        let json = chrome_trace_json(&sample());
        assert!(json.contains("\"ph\":\"X\""), "span present");
        assert!(json.contains("\"ph\":\"i\""), "instant present");
        assert!(json.contains("\"ts\":1.500000"));
        assert!(json.contains("\"dur\":0.250000"));
        assert!(json.contains("bank.lookup"));
    }

    #[test]
    fn track_names_become_thread_metadata() {
        let json = chrome_trace_json(&sample());
        assert!(json.contains("thread_name"));
        assert!(json.contains("node0.cpu0"));
        assert!(json.contains("\\\"quoted\\\""), "labels are escaped");
    }

    #[test]
    fn output_is_structurally_balanced() {
        let json = chrome_trace_json(&sample());
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn empty_snapshot_still_valid() {
        let json = chrome_trace_json(&TraceSnapshot::default());
        assert!(json.contains("traceEvents"));
        assert!(json.contains("process_name"));
    }
}
