//! # piranha-probe — cycle-accurate tracing & metrics
//!
//! The observability substrate of the simulator, in three parts:
//!
//! 1. a central [`MetricRegistry`] of hierarchically-named counters,
//!    gauges and histograms with typed, lock-free handles
//!    ([`CounterHandle`], [`GaugeHandle`], [`HistogramHandle`]);
//! 2. a cycle-stamped structured trace ring buffer ([`TraceBuffer`])
//!    recording subsystem spans, zero-cost when disabled (runtime
//!    [`TraceLevel`] gate plus the compile-time `trace` feature);
//! 3. exporters: Chrome `trace_event` JSON ([`chrome::chrome_trace_json`],
//!    viewable in Perfetto), flat CSV/JSON metric dumps
//!    ([`MetricsSnapshot`]), and the per-core stall-attribution table
//!    ([`StallTable`]) that reproduces the paper's Figure 5 breakdown.
//!
//! Everything hangs off a [`Probe`]: a cheaply-cloneable handle that is
//! either *attached* (shared registry + trace buffer) or *disabled*
//! (every operation a no-op branch). The simulation proper never reads
//! the probe, so enabling it cannot perturb simulated results — the
//! determinism guard in `tests/probe_determinism.rs` asserts this.
//!
//! # Examples
//!
//! ```
//! use piranha_probe::{Probe, ProbeConfig, TraceLevel};
//!
//! let probe = Probe::new(ProbeConfig::with_level(TraceLevel::Spans));
//! let fills = probe.counter("cpu.node0.core0.fills");
//! fills.inc();
//! probe.span(TraceLevel::Spans, "cache", "bank.lookup", 3, 1_000, 500, 0xbeef);
//! let metrics = probe.metrics().unwrap();
//! assert_eq!(metrics.get("cpu.node0.core0.fills").unwrap().as_count(), Some(1));
//! // One span recorded — when the `trace` feature is compiled in.
//! let expected = if cfg!(feature = "trace") { 1 } else { 0 };
//! assert_eq!(probe.trace_snapshot().unwrap().len(), expected);
//! ```

use std::sync::Arc;

pub mod chrome;
pub mod registry;
pub mod stall;
pub mod trace;

pub use registry::{
    CounterHandle, GaugeHandle, HistogramCore, HistogramHandle, MetricRegistry, MetricValue,
    MetricsSnapshot,
};
pub use stall::{StallRow, StallTable};
pub use trace::{TraceBuffer, TraceEvent, TraceLevel, TraceSnapshot};

/// Configuration of a probe at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Runtime trace level.
    pub level: TraceLevel,
    /// Maximum events held by the trace ring buffer.
    pub trace_capacity: usize,
}

impl ProbeConfig {
    /// Metrics on, tracing at `level`, with the default ring capacity.
    pub fn with_level(level: TraceLevel) -> Self {
        ProbeConfig {
            level,
            trace_capacity: 250_000,
        }
    }
}

impl Default for ProbeConfig {
    fn default() -> Self {
        Self::with_level(TraceLevel::Off)
    }
}

#[derive(Debug)]
struct Inner {
    registry: MetricRegistry,
    trace: TraceBuffer,
}

/// The observability handle threaded through the simulator.
///
/// Clones share one registry and trace buffer. A disabled probe
/// ([`Probe::disabled`]) makes every operation a cheap no-op, which is
/// the default for every `Machine` — observability is strictly opt-in.
#[derive(Debug, Clone, Default)]
pub struct Probe(Option<Arc<Inner>>);

impl Probe {
    /// A probe with its own registry and trace buffer.
    pub fn new(cfg: ProbeConfig) -> Self {
        Probe(Some(Arc::new(Inner {
            registry: MetricRegistry::new(),
            trace: TraceBuffer::new(cfg.level, cfg.trace_capacity),
        })))
    }

    /// The no-op probe.
    pub fn disabled() -> Self {
        Probe(None)
    }

    /// Whether this probe is attached to a registry at all.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The shared registry, if attached.
    pub fn registry(&self) -> Option<&MetricRegistry> {
        self.0.as_deref().map(|i| &i.registry)
    }

    /// Register a counter (no-op handle when disabled).
    pub fn counter(&self, name: &str) -> CounterHandle {
        match &self.0 {
            Some(i) => i.registry.register_counter(name),
            None => CounterHandle::noop(),
        }
    }

    /// Register a gauge (no-op handle when disabled).
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        match &self.0 {
            Some(i) => i.registry.register_gauge(name),
            None => GaugeHandle::noop(),
        }
    }

    /// Register a histogram (no-op handle when disabled).
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        match &self.0 {
            Some(i) => i.registry.register_histogram(name),
            None => HistogramHandle::noop(),
        }
    }

    /// Pull-sample an absolute counter reading.
    pub fn publish_counter(&self, name: &str, v: u64) {
        if let Some(i) = &self.0 {
            i.registry.publish_counter(name, v);
        }
    }

    /// Pull-sample a gauge reading.
    pub fn publish_gauge(&self, name: &str, v: f64) {
        if let Some(i) = &self.0 {
            i.registry.publish_gauge(name, v);
        }
    }

    /// A flat snapshot of every metric (`None` when disabled).
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.0.as_deref().map(|i| i.registry.snapshot())
    }

    /// Whether trace records at `level` would currently be kept. Always
    /// `false` when disabled or when the `trace` feature is compiled out.
    #[inline]
    pub fn trace_on(&self, level: TraceLevel) -> bool {
        if cfg!(not(feature = "trace")) {
            return false;
        }
        match &self.0 {
            Some(i) => i.trace.enabled(level),
            None => false,
        }
    }

    /// Change the runtime trace level.
    pub fn set_trace_level(&self, level: TraceLevel) {
        if let Some(i) = &self.0 {
            i.trace.set_level(level);
        }
    }

    /// Name a track (Chrome-trace thread) for the exporters.
    pub fn name_track(&self, track: u32, label: impl Into<String>) {
        #[cfg(feature = "trace")]
        if let Some(i) = &self.0 {
            i.trace.name_track(track, label);
        }
        #[cfg(not(feature = "trace"))]
        let _ = (track, label.into());
    }

    /// Record a span of simulated time (`ts_ps`..`ts_ps + dur_ps`) on
    /// `track`. Compiled out without the `trace` feature; otherwise one
    /// atomic load when the runtime level is below `level`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        level: TraceLevel,
        cat: &'static str,
        name: &'static str,
        track: u32,
        ts_ps: u64,
        dur_ps: u64,
        arg: u64,
    ) {
        #[cfg(feature = "trace")]
        if let Some(i) = &self.0 {
            if i.trace.enabled(level) {
                i.trace.record(TraceEvent {
                    ts_ps,
                    dur_ps,
                    cat,
                    name,
                    track,
                    arg,
                });
            }
        }
        #[cfg(not(feature = "trace"))]
        let _ = (level, cat, name, track, ts_ps, dur_ps, arg);
    }

    /// Record an instant (zero-duration) event.
    #[inline]
    pub fn instant(
        &self,
        level: TraceLevel,
        cat: &'static str,
        name: &'static str,
        track: u32,
        ts_ps: u64,
        arg: u64,
    ) {
        self.span(level, cat, name, track, ts_ps, 0, arg);
    }

    /// Clone out the trace contents (`None` when disabled).
    pub fn trace_snapshot(&self) -> Option<TraceSnapshot> {
        self.0.as_deref().map(|i| i.trace.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_is_inert() {
        let p = Probe::disabled();
        assert!(!p.is_enabled());
        assert!(!p.trace_on(TraceLevel::Spans));
        p.counter("x").inc();
        p.publish_counter("y", 9);
        p.span(TraceLevel::Spans, "cpu", "step", 0, 0, 1, 0);
        assert!(p.metrics().is_none());
        assert!(p.trace_snapshot().is_none());
    }

    #[test]
    #[cfg(feature = "trace")]
    fn clones_share_state() {
        let p = Probe::new(ProbeConfig::with_level(TraceLevel::Spans));
        let q = p.clone();
        p.counter("shared").add(2);
        q.counter("shared").add(3);
        assert_eq!(
            p.metrics().unwrap().get("shared").unwrap().as_count(),
            Some(5)
        );
        q.span(TraceLevel::Spans, "net", "send", 1, 10, 5, 0);
        assert_eq!(p.trace_snapshot().unwrap().len(), 1);
    }

    #[test]
    #[cfg(feature = "trace")]
    fn runtime_level_gates_spans() {
        let p = Probe::new(ProbeConfig::with_level(TraceLevel::Spans));
        p.span(TraceLevel::Verbose, "cpu", "fine", 0, 0, 0, 0);
        assert_eq!(p.trace_snapshot().unwrap().len(), 0, "verbose filtered");
        p.set_trace_level(TraceLevel::Verbose);
        p.instant(TraceLevel::Verbose, "cpu", "fine", 0, 1, 0);
        assert_eq!(p.trace_snapshot().unwrap().len(), 1);
        p.set_trace_level(TraceLevel::Off);
        p.span(TraceLevel::Spans, "cpu", "step", 0, 2, 1, 0);
        assert_eq!(p.trace_snapshot().unwrap().len(), 1, "off records nothing");
    }

    #[test]
    fn off_level_probe_still_collects_metrics() {
        let p = Probe::new(ProbeConfig::default());
        p.counter("kernel.events").add(7);
        assert!(!p.trace_on(TraceLevel::Spans));
        assert_eq!(
            p.metrics()
                .unwrap()
                .get("kernel.events")
                .unwrap()
                .as_count(),
            Some(7)
        );
    }
}
