//! One memory bank: the RDRAM channel plus the authoritative data
//! (version) and directory stores for the lines homed at this bank.
//!
//! The paper's memory controller has no direct ICS access — "access to
//! memory is controlled by and routed through the corresponding L2
//! controller" at cache-line granularity, for both data and directory —
//! so this type exposes exactly two operations, a line read and a line
//! write, each of which also touches the directory bits (they live in the
//! same ECC words).

use piranha_types::FastMap;

use piranha_types::{LineAddr, SimTime};

use crate::directory::DirEntry;
use crate::rdram::{MemAccess, Rdram, RdramConfig};

/// Configuration of a memory bank.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemBankConfig {
    /// The RDRAM channel parameters.
    pub rdram: RdramConfig,
}

/// A memory bank: timing channel + version store + directory store.
///
/// Line "data" is modelled as a monotonically increasing version stamped
/// by each writer (see the `piranha-cache` crate docs); unwritten memory
/// reads as version 0.
///
/// # Examples
///
/// ```
/// use piranha_mem::{MemBank, MemBankConfig};
/// use piranha_types::{LineAddr, SimTime};
///
/// let mut bank = MemBank::new(MemBankConfig::default());
/// let (acc, version, dir) = bank.read(SimTime::ZERO, LineAddr(4));
/// assert_eq!(version, 0);
/// assert_eq!(dir, piranha_mem::DirEntry::Uncached);
/// assert_eq!(acc.critical.as_ns(), 60);
/// ```
#[derive(Debug)]
pub struct MemBank {
    rdram: Rdram,
    versions: FastMap<LineAddr, u64>,
    directory: FastMap<LineAddr, DirEntry>,
}

impl MemBank {
    /// A new bank with all lines at version 0 and uncached directories.
    pub fn new(cfg: MemBankConfig) -> Self {
        MemBank {
            rdram: Rdram::new(cfg.rdram),
            versions: FastMap::default(),
            directory: FastMap::default(),
        }
    }

    /// Charge one line access for timing only (the caller reads the
    /// version/directory later, at the access's completion time, so that
    /// intervening writes are observed).
    pub fn access(&mut self, now: SimTime, line: LineAddr) -> MemAccess {
        self.rdram.access(now, line)
    }

    /// Read a line: returns the access timing, the stored version, and
    /// the directory entry (read for free from the same ECC words).
    pub fn read(&mut self, now: SimTime, line: LineAddr) -> (MemAccess, u64, DirEntry) {
        let acc = self.rdram.access(now, line);
        let v = self.versions.get(&line).copied().unwrap_or(0);
        let d = self.directory.get(&line).cloned().unwrap_or_default();
        (acc, v, d)
    }

    /// Write a line's data (a write-back); directory bits are unchanged.
    pub fn write(&mut self, now: SimTime, line: LineAddr, version: u64) -> MemAccess {
        let acc = self.rdram.access(now, line);
        self.versions.insert(line, version);
        acc
    }

    /// Update only the directory bits (charged as a normal line access —
    /// the bits live in the line's ECC words).
    pub fn write_directory(&mut self, now: SimTime, line: LineAddr, dir: DirEntry) -> MemAccess {
        let acc = self.rdram.access(now, line);
        self.directory.insert(line, dir);
        acc
    }

    /// Write data and directory together (one access).
    pub fn write_with_directory(
        &mut self,
        now: SimTime,
        line: LineAddr,
        version: u64,
        dir: DirEntry,
    ) -> MemAccess {
        let acc = self.rdram.access(now, line);
        self.versions.insert(line, version);
        self.directory.insert(line, dir);
        acc
    }

    /// Every line with a non-default version, sorted — the bank's data
    /// state for warming-fidelity checks.
    pub fn written_lines(&self) -> Vec<(LineAddr, u64)> {
        let mut rows: Vec<(LineAddr, u64)> = self.versions.iter().map(|(l, v)| (*l, *v)).collect();
        rows.sort_unstable();
        rows
    }

    /// Every line with a directory entry, sorted, with the entry in its
    /// ECC-word encoding — the directory's occupancy for
    /// warming-fidelity checks.
    pub fn directory_lines(&self) -> Vec<(LineAddr, u64)> {
        let mut rows: Vec<(LineAddr, u64)> = self
            .directory
            .iter()
            .map(|(l, d)| (*l, d.encode()))
            .collect();
        rows.sort_unstable();
        rows
    }

    /// Peek the directory without timing (for protocol-engine state
    /// machines whose timing is charged separately by the simulator).
    pub fn directory(&self, line: LineAddr) -> DirEntry {
        self.directory.get(&line).cloned().unwrap_or_default()
    }

    /// Peek a version without timing (for invariant checks in tests).
    pub fn version(&self, line: LineAddr) -> u64 {
        self.versions.get(&line).copied().unwrap_or(0)
    }

    /// Set the directory without timing (protocol-engine updates; the
    /// engine charges its own memory access).
    pub fn set_directory(&mut self, line: LineAddr, dir: DirEntry) {
        self.directory.insert(line, dir);
    }

    /// Set a version without timing (used by workload setup).
    pub fn set_version(&mut self, line: LineAddr, version: u64) {
        self.versions.insert(line, version);
    }

    /// The underlying RDRAM channel (for page-hit statistics).
    pub fn rdram(&self) -> &Rdram {
        &self.rdram
    }

    /// Fault-injection entry point: flip the given bit positions of the
    /// line's SEC-DED codeword and scrub it. A corrected (or clean)
    /// result re-installs the decoded data — bit-identical to the
    /// original, which is the point of SEC-DED; an uncorrectable result
    /// leaves the store untouched and the caller escalates (mirroring
    /// failover). No timing is charged here: the caller models the
    /// scrub/failover latency.
    pub fn inject_and_scrub(&mut self, line: LineAddr, bits: &[u32]) -> crate::ecc::Scrub {
        let stored = self.version(line);
        let mut cw = crate::ecc::encode(stored);
        for &b in bits {
            cw ^= 1u128 << (b % crate::ecc::CODEWORD_BITS);
        }
        let outcome = crate::ecc::scrub(cw);
        match outcome {
            crate::ecc::Scrub::Clean(d) | crate::ecc::Scrub::Corrected(d) => {
                debug_assert_eq!(d, stored, "SEC-DED recovered the exact word");
                self.versions.insert(line, d);
            }
            crate::ecc::Scrub::Uncorrectable => {}
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::NodeSet;
    use piranha_types::ids::NodeId;

    #[test]
    fn versions_persist_across_read_write() {
        let mut b = MemBank::new(MemBankConfig::default());
        assert_eq!(b.read(SimTime::ZERO, LineAddr(1)).1, 0);
        b.write(SimTime::from_ns(200), LineAddr(1), 42);
        assert_eq!(b.read(SimTime::from_ns(400), LineAddr(1)).1, 42);
        assert_eq!(b.version(LineAddr(1)), 42);
    }

    #[test]
    fn directory_travels_with_data() {
        let mut b = MemBank::new(MemBankConfig::default());
        let sharers: NodeSet = [NodeId(3)].into_iter().collect();
        b.set_directory(LineAddr(7), DirEntry::Shared(sharers.clone()));
        let (_, _, d) = b.read(SimTime::ZERO, LineAddr(7));
        assert_eq!(d, DirEntry::Shared(sharers));
        // Data write-backs leave the directory alone.
        b.write(SimTime::from_ns(100), LineAddr(7), 5);
        assert_ne!(b.directory(LineAddr(7)), DirEntry::Uncached);
    }

    #[test]
    fn combined_write_sets_both() {
        let mut b = MemBank::new(MemBankConfig::default());
        b.write_with_directory(
            SimTime::ZERO,
            LineAddr(9),
            11,
            DirEntry::Exclusive(NodeId(2)),
        );
        assert_eq!(b.version(LineAddr(9)), 11);
        assert_eq!(b.directory(LineAddr(9)), DirEntry::Exclusive(NodeId(2)));
    }

    #[test]
    fn inject_and_scrub_round_trips() {
        let mut b = MemBank::new(MemBankConfig::default());
        b.set_version(LineAddr(3), 77);
        // Single-bit flip: corrected, data intact.
        assert_eq!(
            b.inject_and_scrub(LineAddr(3), &[17]),
            crate::ecc::Scrub::Corrected(77)
        );
        assert_eq!(b.version(LineAddr(3)), 77);
        // Double-bit flip: uncorrectable, store untouched (caller
        // escalates to a mirror restore).
        assert_eq!(
            b.inject_and_scrub(LineAddr(3), &[5, 40]),
            crate::ecc::Scrub::Uncorrectable
        );
        assert_eq!(b.version(LineAddr(3)), 77);
        // No flips at all: clean.
        assert_eq!(
            b.inject_and_scrub(LineAddr(3), &[]),
            crate::ecc::Scrub::Clean(77)
        );
    }

    #[test]
    fn timing_flows_through_rdram() {
        let mut b = MemBank::new(MemBankConfig::default());
        let (a1, _, _) = b.read(SimTime::ZERO, LineAddr(0));
        assert!(!a1.page_hit);
        let a2 = b.write_directory(a1.full, LineAddr(1), DirEntry::Uncached);
        assert!(a2.page_hit, "directory update to the same page hits open");
        assert_eq!(b.rdram().accesses(), 2);
    }
}
