//! Memory controller, direct Rambus (RDRAM) timing, and directory
//! storage — paper §2.4 and §2.5.2.
//!
//! Each of the eight L2 banks owns one memory controller and RDRAM
//! channel (1.6 GB/s, up to 32 devices). A random access costs 60 ns to
//! the critical word plus 30 ns for the rest of the line; a hit to an
//! open device page costs 40 ns instead, and the paper reports that
//! keeping pages open for about a microsecond yields over 50% page hits
//! on OLTP. [`Rdram`] reproduces that policy.
//!
//! Directory information is stored *in the memory itself*: ECC is
//! computed at 256-bit granularity instead of 64-bit, freeing 44 bits per
//! 64-byte line, which hold a 2-bit state and 42 bits of sharer encoding —
//! limited pointers up to four sharers, then a coarse bit vector
//! ([`directory`]). Reading a line's directory *is* reading the line,
//! which is why the timing model charges a single access for both.
//!
//! Those ECC words are real here: [`ecc`] implements the 72-bit SEC-DED
//! code (Hamming(71,64) + overall parity) that corrects single-bit
//! flips in place and detects double-bit flips, the first line of the
//! paper's §2.7 RAS story. [`MemBank::inject_and_scrub`] is the fault
//! plane's entry point into it.

#![warn(missing_docs)]

pub mod bank;
pub mod component;
pub mod directory;
pub mod ecc;
pub mod rdram;

pub use bank::{MemBank, MemBankConfig};
pub use component::{MemArray, MemData, MemEvent};
pub use directory::{DirEntry, NodeSet, DIR_BITS, POINTER_LIMIT};
pub use ecc::Scrub;
pub use rdram::{MemAccess, Rdram, RdramConfig};
