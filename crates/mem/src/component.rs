//! The memory-array component adapter.
//!
//! One node's RDRAM banks behind the kernel's [`Component`] interface.
//! A [`MemEvent`] models the data-return instant of a read the memory
//! controller started earlier; the array reads the line's version and
//! directory *at that instant* — so intervening writes are observed —
//! and emits them as a [`MemData`] action for the wiring to hand back to
//! the requesting L2 bank. Writes, directory updates, and ECC scrubbing
//! are synchronous and go through the direct methods.

use piranha_kernel::{Component, Port};
use piranha_types::{LineAddr, RemoteSummary, SimTime};

use crate::{ecc::Scrub, DirEntry, MemAccess, MemBank};

/// A read's data-return event: bank `bank` returns `line` now.
#[derive(Debug, Clone, Copy)]
pub struct MemEvent {
    /// Node-local memory bank (same interleave as the L2 banks).
    pub bank: usize,
    /// The line whose read completes.
    pub line: LineAddr,
}

/// The data a completing read carries back to its L2 bank.
#[derive(Debug, Clone, Copy)]
pub struct MemData {
    /// Bank the data came from.
    pub bank: usize,
    /// The line.
    pub line: LineAddr,
    /// The line's version as of the return instant.
    pub version: u64,
    /// The directory's remote-sharing summary as of the return instant.
    pub remote: RemoteSummary,
}

/// One node's memory banks (RDRAM channels plus the in-memory
/// directory, paper §2.5–2.6).
#[derive(Debug)]
pub struct MemArray {
    banks: Vec<MemBank>,
}

impl MemArray {
    /// An array over pre-built banks.
    pub fn new(banks: Vec<MemBank>) -> Self {
        MemArray { banks }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Start a read on bank `bank`; returns its access timing.
    pub fn access(&mut self, bank: usize, now: SimTime, line: LineAddr) -> MemAccess {
        self.banks[bank].access(now, line)
    }

    /// Write `line`'s version on bank `bank`.
    pub fn write(&mut self, bank: usize, now: SimTime, line: LineAddr, version: u64) -> MemAccess {
        self.banks[bank].write(now, line, version)
    }

    /// The stored version of `line` on bank `bank`.
    pub fn version(&self, bank: usize, line: LineAddr) -> u64 {
        self.banks[bank].version(line)
    }

    /// Overwrite `line`'s version (RAS mirror failover path).
    pub fn set_version(&mut self, bank: usize, line: LineAddr, version: u64) {
        self.banks[bank].set_version(line, version)
    }

    /// The directory entry of `line` on bank `bank`.
    pub fn directory(&self, bank: usize, line: LineAddr) -> DirEntry {
        self.banks[bank].directory(line)
    }

    /// Inject `bits` flips into `line` and run the ECC scrubber.
    pub fn inject_and_scrub(&mut self, bank: usize, line: LineAddr, bits: &[u32]) -> Scrub {
        self.banks[bank].inject_and_scrub(line, bits)
    }

    /// The banks themselves (directory store views, statistics).
    pub fn banks(&self) -> &[MemBank] {
        &self.banks
    }

    /// Mutable bank slice (the home engine's `DirStore` borrows it).
    pub fn banks_mut(&mut self) -> &mut [MemBank] {
        &mut self.banks
    }
}

impl Component for MemArray {
    type Event = MemEvent;
    type Action = MemData;
    type Ctx<'a> = ();

    fn handle(&mut self, now: SimTime, event: MemEvent, _ctx: (), out: &mut Port<MemData>) {
        let MemEvent { bank, line } = event;
        // Read version and directory at data-return time, not at the
        // time the read was issued.
        let version = self.banks[bank].version(line);
        let remote = self.banks[bank].directory(line).summary();
        out.emit(
            now,
            MemData {
                bank,
                line,
                version,
                remote,
            },
        );
    }
}
