//! SEC-DED ECC over 64-bit words: Hamming(71,64) plus an overall parity
//! bit, the classic 72-bit DRAM codeword.
//!
//! The paper's memory system stores directory bits "in the same ECC
//! words" as the data and relies on single-error-correct /
//! double-error-detect codes to ride out soft errors (§2.7's RAS story
//! starts here: a single-bit flip is scrubbed transparently, a
//! double-bit flip is detected and escalates to mirroring failover).
//! This module implements the real code, not a flag: 64 data bits are
//! scattered over non-power-of-two positions 1..72, seven Hamming check
//! bits sit at the power-of-two positions, and bit 0 carries overall
//! parity.

/// Codeword width in bits (64 data + 7 Hamming + 1 overall parity).
pub const CODEWORD_BITS: u32 = 72;

/// The outcome of scrubbing one codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scrub {
    /// No error: the decoded data word.
    Clean(u64),
    /// A single-bit error was corrected; the (intact) data word.
    Corrected(u64),
    /// A double-bit error: detected but uncorrectable. The data cannot
    /// be trusted; the caller must restore from a redundant copy.
    Uncorrectable,
}

/// XOR of the (1-based) positions of all set bits in 1..72 — zero for a
/// valid codeword, the error position for a single flip.
fn syndrome(cw: u128) -> u32 {
    let mut s = 0u32;
    for pos in 1..CODEWORD_BITS {
        if (cw >> pos) & 1 == 1 {
            s ^= pos;
        }
    }
    s
}

/// Encode a 64-bit data word into a 72-bit SEC-DED codeword.
pub fn encode(data: u64) -> u128 {
    let mut cw: u128 = 0;
    let mut d = 0;
    for pos in 1..CODEWORD_BITS {
        if pos.is_power_of_two() {
            continue;
        }
        if (data >> d) & 1 == 1 {
            cw |= 1 << pos;
        }
        d += 1;
    }
    debug_assert_eq!(d, 64, "64 data positions in the codeword");
    // Set each Hamming check bit (at position 2^i) so the syndrome of
    // the complete codeword is zero.
    let syn = syndrome(cw);
    for i in 0..7 {
        if (syn >> i) & 1 == 1 {
            cw |= 1 << (1u32 << i);
        }
    }
    // Overall parity (bit 0) makes the whole 72-bit word even.
    if cw.count_ones() % 2 == 1 {
        cw |= 1;
    }
    cw
}

/// Extract the data bits from a codeword (no checking).
pub fn decode(cw: u128) -> u64 {
    let mut data = 0u64;
    let mut d = 0;
    for pos in 1..CODEWORD_BITS {
        if pos.is_power_of_two() {
            continue;
        }
        if (cw >> pos) & 1 == 1 {
            data |= 1 << d;
        }
        d += 1;
    }
    data
}

/// Check and (if possible) repair one codeword: single-bit errors are
/// located by the syndrome and corrected, double-bit errors (nonzero
/// syndrome with intact overall parity) are detected as uncorrectable.
pub fn scrub(mut cw: u128) -> Scrub {
    let syn = syndrome(cw);
    let parity_even = cw.count_ones().is_multiple_of(2);
    match (syn, parity_even) {
        (0, true) => Scrub::Clean(decode(cw)),
        (0, false) => {
            // The overall parity bit itself flipped; data is intact.
            Scrub::Corrected(decode(cw))
        }
        (s, false) => {
            cw ^= 1 << s;
            Scrub::Corrected(decode(cw))
        }
        (_, true) => Scrub::Uncorrectable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<u64> {
        vec![0, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 0x5555_5555_5555_5555]
    }

    #[test]
    fn roundtrip_and_clean_scrub() {
        for d in samples() {
            let cw = encode(d);
            assert!(cw < (1u128 << CODEWORD_BITS));
            assert_eq!(decode(cw), d);
            assert_eq!(scrub(cw), Scrub::Clean(d));
        }
    }

    #[test]
    fn every_single_bit_flip_is_corrected() {
        for d in samples() {
            let cw = encode(d);
            for bit in 0..CODEWORD_BITS {
                let bad = cw ^ (1u128 << bit);
                assert_eq!(
                    scrub(bad),
                    Scrub::Corrected(d),
                    "flip at bit {bit} of data {d:#x}"
                );
            }
        }
    }

    #[test]
    fn every_double_bit_flip_is_detected() {
        for d in [0u64, 0xDEAD_BEEF_CAFE_F00D] {
            let cw = encode(d);
            for a in 0..CODEWORD_BITS {
                for b in (a + 1)..CODEWORD_BITS {
                    let bad = cw ^ (1u128 << a) ^ (1u128 << b);
                    assert_eq!(
                        scrub(bad),
                        Scrub::Uncorrectable,
                        "double flip at bits {a},{b} of data {d:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn distinct_data_distinct_codewords() {
        let mut seen = std::collections::HashSet::new();
        for d in samples() {
            assert!(seen.insert(encode(d)));
        }
    }
}
