//! Direct Rambus DRAM channel timing with open-page tracking (paper §2.4).

use piranha_types::FastMap;

use piranha_kernel::{MultiServer, Pipe, Ratio};
use piranha_types::{Addr, Duration, LineAddr, SimTime};

/// Timing parameters of one RDRAM channel.
#[derive(Debug, Clone, Copy)]
pub struct RdramConfig {
    /// Latency to the critical word on a page miss (60 ns in the paper).
    pub row_miss: Duration,
    /// Latency to the critical word on an open-page hit (40 ns).
    pub row_hit: Duration,
    /// Additional time for the rest of the cache line (30 ns).
    pub rest_of_line: Duration,
    /// Device page size in bytes (512 in the paper's 64 Mbit generation).
    pub page_bytes: u64,
    /// How long a page stays open after its last access (~1 µs yields
    /// >50% hits on OLTP per the paper).
    pub page_hold: Duration,
    /// Maximum simultaneously open pages across the channel's devices
    /// (a fully populated chip has "as many as 2K pages open"; per
    /// channel that is 2048 / 8 = 256).
    pub max_open_pages: usize,
    /// How many *global* cache lines map to one of this channel's device
    /// pages. Banks are line-interleaved, so a channel owning every 8th
    /// line sees a 512-byte page as 64 consecutive lines of the global
    /// address space (8 lines/page × 8 channels).
    pub page_span_lines: u64,
    /// Channel bandwidth in GB/s (1.6 GB/s; modelled as the nearest
    /// whole-GB/s pipe at 2 GB/s serialization with explicit
    /// rest-of-line latency covering the difference).
    pub channel_gb_s: u64,
    /// Concurrent device banks per channel: row activations overlap
    /// across the RDRAM devices' internal banks, so up to this many
    /// accesses pipeline on one channel.
    pub device_banks: usize,
}

impl RdramConfig {
    /// The paper's channel parameters.
    pub fn paper_default() -> Self {
        RdramConfig {
            row_miss: Duration::from_ns(60),
            row_hit: Duration::from_ns(40),
            rest_of_line: Duration::from_ns(30),
            page_bytes: 512,
            page_hold: Duration::from_ns(1000),
            max_open_pages: 256,
            page_span_lines: 64,
            channel_gb_s: 2,
            device_banks: 4,
        }
    }

    /// The same channel timing for a chip with `banks` interleaved
    /// memory controllers.
    pub fn with_banks(banks: u64) -> Self {
        let mut c = Self::paper_default();
        c.page_span_lines = (c.page_bytes / piranha_types::LINE_BYTES) * banks;
        c
    }
}

impl Default for RdramConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The result of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// When the critical word is available.
    pub critical: SimTime,
    /// When the full line has transferred.
    pub full: SimTime,
    /// Whether the access hit an open page.
    pub page_hit: bool,
}

/// One direct-Rambus channel: open-page state, access timing, and
/// bandwidth occupancy.
///
/// # Examples
///
/// ```
/// use piranha_mem::{Rdram, RdramConfig};
/// use piranha_types::{LineAddr, SimTime};
///
/// let mut m = Rdram::new(RdramConfig::paper_default());
/// let first = m.access(SimTime::ZERO, LineAddr(0));
/// assert!(!first.page_hit);
/// assert_eq!(first.critical.as_ns(), 60);
/// // A second access to the same 512-byte page soon after hits open.
/// let second = m.access(first.full, LineAddr(1));
/// assert!(second.page_hit);
/// ```
#[derive(Debug)]
pub struct Rdram {
    cfg: RdramConfig,
    open_pages: FastMap<u64, SimTime>, // page -> last access time
    channel: Pipe,
    bank_busy: MultiServer,
    page_hits: Ratio,
}

impl Rdram {
    /// A new channel with all pages closed.
    pub fn new(cfg: RdramConfig) -> Self {
        Rdram {
            cfg,
            open_pages: FastMap::default(),
            channel: Pipe::from_gb_per_s(cfg.channel_gb_s),
            bank_busy: MultiServer::new(cfg.device_banks),
            page_hits: Ratio::new(),
        }
    }

    fn page_of(&self, line: LineAddr) -> u64 {
        line.0 / self.cfg.page_span_lines
    }

    /// Perform a 64-byte line access (read or write — RDRAM timing is
    /// symmetric at this abstraction) starting at `now`.
    pub fn access(&mut self, now: SimTime, line: LineAddr) -> MemAccess {
        let page = self.page_of(line);
        let hit = self
            .open_pages
            .get(&page)
            .is_some_and(|last| now.since(*last) <= self.cfg.page_hold);
        self.page_hits.record(hit);
        // Expire stale pages lazily and bound the open set.
        if self.open_pages.len() >= self.cfg.max_open_pages {
            let hold = self.cfg.page_hold;
            self.open_pages.retain(|_, last| now.since(*last) <= hold);
            if self.open_pages.len() >= self.cfg.max_open_pages {
                // Close the least recently used page.
                if let Some((&lru, _)) = self.open_pages.iter().min_by_key(|(&p, &t)| (t, p)) {
                    self.open_pages.remove(&lru);
                }
            }
        }
        self.open_pages.insert(page, now);

        let access_lat = if hit {
            self.cfg.row_hit
        } else {
            self.cfg.row_miss
        };
        // The device is occupied for the access; back-to-back requests to
        // the channel queue.
        let start = self.bank_busy.acquire(now, access_lat);
        let critical = start;
        // The rest of the line streams over the channel.
        let full = self
            .channel
            .acquire(critical, piranha_types::LINE_BYTES)
            .max(critical + self.cfg.rest_of_line);
        MemAccess {
            critical,
            full,
            page_hit: hit,
        }
    }

    /// Fraction of accesses that hit an open page.
    pub fn page_hit_rate(&self) -> f64 {
        self.page_hits.value()
    }

    /// Number of accesses served.
    pub fn accesses(&self) -> u64 {
        self.page_hits.total.get()
    }

    /// The channel's configuration.
    pub fn config(&self) -> RdramConfig {
        self.cfg
    }

    /// The first byte address of the device page containing `addr`
    /// (exposed for workload/page-locality analysis).
    pub fn page_base(&self, addr: Addr) -> Addr {
        Addr(addr.0 / self.cfg.page_bytes * self.cfg.page_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> Rdram {
        // Tests use an un-interleaved channel (8 lines per page) so page
        // boundaries are easy to reason about.
        let mut cfg = RdramConfig::paper_default();
        cfg.page_span_lines = 8;
        Rdram::new(cfg)
    }

    #[test]
    fn cold_access_is_row_miss() {
        let mut m = mk();
        let a = m.access(SimTime::ZERO, LineAddr(0));
        assert!(!a.page_hit);
        assert_eq!(a.critical.as_ns(), 60);
        assert_eq!(a.full.as_ns(), 92, "critical + 32ns line transfer at 2GB/s");
    }

    #[test]
    fn open_page_hit_is_faster() {
        let mut m = mk();
        let a = m.access(SimTime::ZERO, LineAddr(0));
        // Lines 0..8 share the 512-byte page.
        let b = m.access(a.full, LineAddr(3));
        assert!(b.page_hit);
        assert_eq!(b.critical.since(a.full).as_ns(), 40);
    }

    #[test]
    fn page_closes_after_hold_expires() {
        let mut m = mk();
        m.access(SimTime::ZERO, LineAddr(0));
        let late = SimTime::from_ns(5_000); // > 1µs hold
        let b = m.access(late, LineAddr(1));
        assert!(!b.page_hit);
    }

    #[test]
    fn different_pages_do_not_hit() {
        let mut m = mk();
        m.access(SimTime::ZERO, LineAddr(0));
        let b = m.access(SimTime::from_ns(100), LineAddr(8)); // next 512B page
        assert!(!b.page_hit);
    }

    #[test]
    fn hit_rate_tracks_locality() {
        let mut m = mk();
        let mut t = SimTime::ZERO;
        // Sequential scan: 8 lines per page -> 7/8 of accesses hit.
        for i in 0..64 {
            let a = m.access(t, LineAddr(i));
            t = a.full;
        }
        let r = m.page_hit_rate();
        assert!((r - 7.0 / 8.0).abs() < 0.01, "rate = {r}");
        assert_eq!(m.accesses(), 64);
    }

    #[test]
    fn device_banks_pipeline_then_queue() {
        let mut cfg = RdramConfig::paper_default();
        cfg.page_span_lines = 8;
        cfg.device_banks = 2;
        let mut m = Rdram::new(cfg);
        let a = m.access(SimTime::ZERO, LineAddr(0));
        // A second simultaneous access overlaps on another device bank...
        let b = m.access(SimTime::ZERO, LineAddr(100));
        assert_eq!(b.critical, a.critical, "two banks pipeline");
        // ...but a third must queue.
        let c = m.access(SimTime::ZERO, LineAddr(200));
        assert!(c.critical > a.critical, "third access queues");
    }

    #[test]
    fn interleaved_span_groups_lines() {
        let m = Rdram::new(RdramConfig::with_banks(8));
        assert_eq!(m.config().page_span_lines, 64);
        let mut m = Rdram::new(RdramConfig::with_banks(8));
        m.access(SimTime::ZERO, LineAddr(0));
        // Line 63 is still in the same channel page under 8-way
        // interleaving; line 64 is not.
        assert!(m.access(SimTime::from_ns(100), LineAddr(63)).page_hit);
        assert!(!m.access(SimTime::from_ns(200), LineAddr(64)).page_hit);
    }

    #[test]
    fn open_page_set_is_bounded() {
        let mut cfg = RdramConfig::paper_default();
        cfg.page_span_lines = 8;
        cfg.max_open_pages = 4;
        let mut m = Rdram::new(cfg);
        for i in 0..100 {
            m.access(SimTime::from_ns(i * 10), LineAddr(i * 8));
        }
        assert!(m.open_pages.len() <= 5, "open set stayed bounded");
    }

    #[test]
    fn page_base_helper() {
        let m = mk();
        assert_eq!(m.page_base(Addr(1000)), Addr(512));
    }
}
