//! Directory storage in the line's spare ECC bits (paper §2.5.2).
//!
//! "ECC is computed across 256-bit boundaries ..., leaving us with 44 bits
//! for directory storage per 64-byte line. ... Two bits of the directory
//! are used for state, with 42 bits available for encoding sharers." Two
//! representations are used depending on sharer count: *limited pointer*
//! (up to four 10-bit node pointers, enough for the 1K-node maximum) and
//! *coarse vector*, where each of the 42 bits stands for a group of
//! nodes. "Given a 1K node system, we switch to coarse vector
//! representation past 4 remote sharing nodes."
//!
//! Directory information is kept at node granularity and never includes
//! the home node itself (the home's own caching is known from its L2 and
//! duplicate L1 state).

use piranha_types::ids::{NodeId, MAX_NODES};
use piranha_types::RemoteSummary;

/// Total directory bits per 64-byte line.
pub const DIR_BITS: u32 = 44;
/// Sharer-encoding bits (44 − 2 state bits).
pub const SHARER_BITS: u32 = 42;
/// Maximum sharers representable with limited pointers before switching
/// to the coarse vector.
pub const POINTER_LIMIT: usize = 4;

const STATE_INVALID: u64 = 0;
const STATE_SHARED_PTR: u64 = 1;
const STATE_EXCLUSIVE: u64 = 2;
const STATE_SHARED_COARSE: u64 = 3;
const PTR_BITS: u32 = 10; // enough for 1024 nodes

/// A set of remote sharer nodes.
///
/// Kept sorted and deduplicated; comparisons are set comparisons.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeSet(Vec<NodeId>);

impl NodeSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a node (idempotent).
    pub fn insert(&mut self, n: NodeId) {
        if let Err(i) = self.0.binary_search(&n) {
            self.0.insert(i, n);
        }
    }

    /// Remove a node; returns whether it was present.
    pub fn remove(&mut self, n: NodeId) -> bool {
        match self.0.binary_search(&n) {
            Ok(i) => {
                self.0.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, n: NodeId) -> bool {
        self.0.binary_search(&n).is_ok()
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.0.iter().copied()
    }

    /// Whether `self` contains every member of `other`.
    pub fn is_superset(&self, other: &NodeSet) -> bool {
        other.iter().all(|n| self.contains(n))
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut s = NodeSet::new();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<T: IntoIterator<Item = NodeId>>(&mut self, iter: T) {
        for n in iter {
            self.insert(n);
        }
    }
}

/// The directory state of one memory line at its home node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DirEntry {
    /// No remote node caches the line.
    #[default]
    Uncached,
    /// Remote nodes hold shared copies.
    Shared(NodeSet),
    /// One remote node holds the line exclusively.
    Exclusive(NodeId),
}

impl DirEntry {
    /// The coarse summary the L2 controller can interpret without the
    /// protocol engines (paper §2.3).
    pub fn summary(&self) -> RemoteSummary {
        match self {
            DirEntry::Uncached => RemoteSummary::None,
            DirEntry::Shared(s) if s.is_empty() => RemoteSummary::None,
            DirEntry::Shared(_) => RemoteSummary::Shared,
            DirEntry::Exclusive(_) => RemoteSummary::Exclusive,
        }
    }

    /// Encode into the line's 44 spare ECC bits.
    ///
    /// Up to [`POINTER_LIMIT`] sharers use exact 10-bit pointers; beyond
    /// that, the encoding switches to a 42-bit coarse vector where bit
    /// *i* covers nodes `{n : n % 42 == i}` — decoding then yields a
    /// superset of the true sharers, which is safe (spurious
    /// invalidations, never missed ones).
    ///
    /// # Panics
    ///
    /// Panics if a node id is ≥ [`MAX_NODES`].
    pub fn encode(&self) -> u64 {
        match self {
            DirEntry::Uncached => STATE_INVALID,
            DirEntry::Exclusive(n) => {
                assert!((n.0 as usize) < MAX_NODES, "node id out of range");
                STATE_EXCLUSIVE | ((n.0 as u64) << 2)
            }
            DirEntry::Shared(s) if s.is_empty() => STATE_INVALID,
            DirEntry::Shared(s) if s.len() <= POINTER_LIMIT => {
                let mut bits = STATE_SHARED_PTR;
                // 2-bit count (count-1) in bits 2..4, pointers above.
                bits |= ((s.len() as u64 - 1) & 0b11) << 2;
                for (i, n) in s.iter().enumerate() {
                    assert!((n.0 as usize) < MAX_NODES, "node id out of range");
                    bits |= (n.0 as u64) << (4 + PTR_BITS * i as u32);
                }
                bits
            }
            DirEntry::Shared(s) => {
                let mut bits = STATE_SHARED_COARSE;
                for n in s.iter() {
                    assert!((n.0 as usize) < MAX_NODES, "node id out of range");
                    let g = (n.0 as u64) % SHARER_BITS as u64;
                    bits |= 1u64 << (2 + g);
                }
                bits
            }
        }
    }

    /// Decode 44 directory bits, expanding coarse-vector groups over the
    /// `total_nodes` in the system.
    ///
    /// For pointer and exclusive encodings the result is exact; for
    /// coarse encodings it is the covering superset.
    pub fn decode(bits: u64, total_nodes: usize) -> DirEntry {
        match bits & 0b11 {
            STATE_INVALID => DirEntry::Uncached,
            STATE_EXCLUSIVE => DirEntry::Exclusive(NodeId(((bits >> 2) & 0x3ff) as u16)),
            STATE_SHARED_PTR => {
                let count = ((bits >> 2) & 0b11) as usize + 1;
                let s = (0..count)
                    .map(|i| NodeId(((bits >> (4 + PTR_BITS * i as u32)) & 0x3ff) as u16))
                    .collect();
                DirEntry::Shared(s)
            }
            STATE_SHARED_COARSE => {
                let mut s = NodeSet::new();
                for n in 0..total_nodes {
                    let g = (n as u64) % SHARER_BITS as u64;
                    if bits & (1u64 << (2 + g)) != 0 {
                        s.insert(NodeId(n as u16));
                    }
                }
                DirEntry::Shared(s)
            }
            _ => unreachable!("2-bit state covers all patterns"),
        }
    }

    /// The sharers to invalidate for an exclusive request from
    /// `requester` (everyone but the requester; exact or superset).
    pub fn invalidation_targets(&self, requester: NodeId, total_nodes: usize) -> NodeSet {
        let mut out = match self {
            DirEntry::Uncached => NodeSet::new(),
            DirEntry::Exclusive(n) => core::iter::once(*n).collect(),
            DirEntry::Shared(s) => s.clone(),
        };
        out.remove(requester);
        let _ = total_nodes;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(ids: &[u16]) -> NodeSet {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn node_set_semantics() {
        let mut s = NodeSet::new();
        s.insert(NodeId(5));
        s.insert(NodeId(2));
        s.insert(NodeId(5)); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId(2)));
        assert!(!s.contains(NodeId(3)));
        assert!(s.remove(NodeId(2)));
        assert!(!s.remove(NodeId(2)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![NodeId(5)]);
        assert!(ns(&[1, 2, 3]).is_superset(&ns(&[2, 3])));
        assert!(!ns(&[1]).is_superset(&ns(&[2])));
    }

    #[test]
    fn uncached_round_trip() {
        let e = DirEntry::Uncached;
        assert_eq!(DirEntry::decode(e.encode(), 1024), e);
        assert_eq!(e.summary(), RemoteSummary::None);
    }

    #[test]
    fn exclusive_round_trip_at_max_node() {
        let e = DirEntry::Exclusive(NodeId(1023));
        assert_eq!(DirEntry::decode(e.encode(), 1024), e);
        assert_eq!(e.summary(), RemoteSummary::Exclusive);
    }

    #[test]
    fn pointer_round_trip_up_to_four() {
        for n in 1..=4usize {
            let sharers: NodeSet = (0..n).map(|i| NodeId((i * 300) as u16)).collect();
            let e = DirEntry::Shared(sharers);
            let d = DirEntry::decode(e.encode(), 1024);
            assert_eq!(d, e, "exact round trip for {n} sharers");
        }
    }

    #[test]
    fn coarse_vector_is_superset() {
        let sharers = ns(&[1, 43, 85, 100, 900]); // 5 sharers -> coarse
        let e = DirEntry::Shared(sharers.clone());
        let bits = e.encode();
        assert_eq!(bits & 0b11, STATE_SHARED_COARSE);
        let DirEntry::Shared(decoded) = DirEntry::decode(bits, 1024) else {
            panic!("coarse decodes to Shared");
        };
        assert!(decoded.is_superset(&sharers));
        // 1 and 43 alias to the same group bit.
        assert!(decoded.contains(NodeId(1)) && decoded.contains(NodeId(43)));
    }

    #[test]
    fn encoding_fits_44_bits() {
        let full: NodeSet = (0..42u16).map(NodeId).collect();
        for e in [
            DirEntry::Uncached,
            DirEntry::Exclusive(NodeId(1023)),
            DirEntry::Shared(ns(&[1023, 1022, 1021, 1020])),
            DirEntry::Shared(full),
        ] {
            assert!(e.encode() < (1u64 << DIR_BITS), "{e:?} exceeds 44 bits");
        }
    }

    #[test]
    fn empty_shared_encodes_as_uncached() {
        let e = DirEntry::Shared(NodeSet::new());
        assert_eq!(DirEntry::decode(e.encode(), 16), DirEntry::Uncached);
        assert_eq!(e.summary(), RemoteSummary::None);
    }

    #[test]
    fn invalidation_targets_exclude_requester() {
        let e = DirEntry::Shared(ns(&[1, 2, 3]));
        let t = e.invalidation_targets(NodeId(2), 16);
        assert_eq!(t, ns(&[1, 3]));
        let e = DirEntry::Exclusive(NodeId(4));
        assert_eq!(e.invalidation_targets(NodeId(4), 16), NodeSet::new());
        assert_eq!(e.invalidation_targets(NodeId(5), 16), ns(&[4]));
    }

    #[test]
    fn small_system_coarse_decode_is_exact_when_groups_unique() {
        // With ≤42 nodes every node has its own group bit, so even the
        // coarse representation is exact.
        let sharers = ns(&[0, 5, 10, 20, 41]);
        let e = DirEntry::Shared(sharers.clone());
        let DirEntry::Shared(d) = DirEntry::decode(e.encode(), 42) else {
            panic!();
        };
        assert_eq!(d, sharers);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_node_id_panics() {
        DirEntry::Exclusive(NodeId(1024)).encode();
    }
}
