//! The fault plane: the object the machine consults at dispatch points.
//!
//! Each fault category (packet, router stall, memory, engine) has its
//! own PRNG stream derived from `fault_seed ^ machine_seed`, so adding a
//! consult in one category never shifts the draws of another, and the
//! same seed reproduces the same fault sequence bit-for-bit. Scripted
//! events fire on the first consult of their category at or after their
//! cycle, independently of the random rate.

use piranha_kernel::Prng;

use crate::report::AvailabilityReport;
use crate::schedule::{FaultConfig, FaultKind, FaultSchedule};

/// Independent-stream tags (arbitrary distinct constants).
const TAG_PACKET: u64 = 0xFA17_0001;
const TAG_STALL: u64 = 0xFA17_0002;
const TAG_MEM: u64 = 0xFA17_0003;
const TAG_ENGINE: u64 = 0xFA17_0004;

/// A packet fault decision: the payload is lost (flap) or corrupted
/// (caught by CRC); either way the sender must retransmit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketFault {
    /// [`FaultKind::LinkFlap`] or [`FaultKind::PacketCorrupt`].
    pub kind: FaultKind,
    /// How many transmission attempts fail before one succeeds. When
    /// this exceeds the retry budget the fault escalates (the final
    /// delivery still happens — the model keeps forward progress — but
    /// availability accounting records the budget blow-through).
    pub failed_attempts: u32,
    /// Raw entropy for choosing which payload bit to corrupt (the
    /// recovery path reduces it modulo the encoded payload width).
    pub flip_bit: u32,
}

/// A memory fault decision: one or two bits of a line's ECC word flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// [`FaultKind::MemFlipSingle`] or [`FaultKind::MemFlipDouble`].
    pub kind: FaultKind,
    /// First flipped bit position within the 72-bit SEC-DED codeword.
    pub bit_a: u32,
    /// Second flipped bit (only meaningful for double-bit faults;
    /// always differs from `bit_a`).
    pub bit_b: u32,
}

/// A protocol-engine hiccup decision: the engine's watchdog will expire
/// and the transaction replays from its TSRF inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineHiccup {
    /// Always [`FaultKind::EngineHiccup`]; carried so recovery code can
    /// report uniformly.
    pub kind: FaultKind,
}

/// The machine-facing injection oracle plus the availability ledger.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    cfg: FaultConfig,
    schedule: FaultSchedule,
    /// Per-category cursors into the scripted queues:
    /// packet/stall/mem/engine.
    cursors: [usize; 4],
    packet_rng: Prng,
    stall_rng: Prng,
    mem_rng: Prng,
    engine_rng: Prng,
    enabled: bool,
    report: AvailabilityReport,
}

impl FaultPlane {
    /// Build the plane for one machine. The machine seed is mixed in so
    /// a given fault seed explores a different interleaving on each
    /// configuration, while (fault seed, machine config) stays fully
    /// reproducible.
    pub fn new(cfg: FaultConfig, machine_seed: u64) -> Self {
        let root = Prng::seed_from_u64(cfg.seed ^ machine_seed ^ 0x5EED_FA17);
        let schedule = FaultSchedule::compile(&cfg);
        let enabled = cfg.enabled();
        FaultPlane {
            packet_rng: root.derive(TAG_PACKET),
            stall_rng: root.derive(TAG_STALL),
            mem_rng: root.derive(TAG_MEM),
            engine_rng: root.derive(TAG_ENGINE),
            cfg,
            schedule,
            cursors: [0; 4],
            enabled,
            report: AvailabilityReport::default(),
        }
    }

    /// Build the plane for one lane (node) of a partitioned machine.
    ///
    /// Lane 0's plane is bit-identical to [`FaultPlane::new`], including
    /// the scripted schedule — scripted events fire exactly once
    /// machine-wide, and lane 0 owns them. Other lanes mix the node
    /// index into the machine seed (so their random streams are
    /// independent of lane 0's and of each other's) and carry no script.
    /// Each lane consults only its own plane, which is what keeps fault
    /// draws deterministic when lanes run on separate worker threads.
    pub fn for_node(cfg: FaultConfig, machine_seed: u64, node: usize) -> Self {
        if node == 0 {
            return Self::new(cfg, machine_seed);
        }
        let mut plane = Self::new(
            cfg,
            machine_seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        plane.schedule = FaultSchedule::default();
        plane
    }

    /// The configuration this plane was built from.
    pub fn cfg(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether anything can ever be injected. When false, every consult
    /// returns `None`/`false` without touching a PRNG.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Pop a scripted event of category `cat` if one is due at
    /// `now_cycle` (at most one per consult, in cycle order).
    fn scripted(&mut self, cat: usize, now_cycle: u64) -> Option<FaultKind> {
        let queue = match cat {
            0 => &self.schedule.packet,
            1 => &self.schedule.stall,
            2 => &self.schedule.mem,
            _ => &self.schedule.engine,
        };
        let cur = self.cursors[cat];
        if cur < queue.len() && now_cycle >= queue[cur].at_cycle {
            self.cursors[cat] = cur + 1;
            Some(queue[cur].kind)
        } else {
            None
        }
    }

    /// Consult at a packet send. Returns the fault to inject, if any.
    pub fn packet_fault(&mut self, now_cycle: u64) -> Option<PacketFault> {
        if !self.enabled {
            return None;
        }
        let kind = match self.scripted(0, now_cycle) {
            Some(k) => k,
            None => {
                if self.cfg.rate <= 0.0 || !self.packet_rng.chance(self.cfg.rate) {
                    return None;
                }
                if self.packet_rng.below(2) == 0 {
                    FaultKind::LinkFlap
                } else {
                    FaultKind::PacketCorrupt
                }
            }
        };
        // How many attempts fail: usually one, occasionally a burst that
        // blows the retry budget and escalates.
        let burst = 1 + self.packet_rng.geometric(0.5) as u32;
        let failed_attempts = burst.min(self.cfg.retry_budget + 1);
        let flip_bit = self.packet_rng.below(1 << 16) as u32;
        Some(PacketFault {
            kind,
            failed_attempts,
            flip_bit,
        })
    }

    /// Consult at a router hop. Returns the stall length in cycles, if
    /// this hop stalls.
    pub fn router_stall(&mut self, now_cycle: u64) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        let scripted = self.scripted(1, now_cycle).is_some();
        if !scripted && (self.cfg.rate <= 0.0 || !self.stall_rng.chance(self.cfg.rate)) {
            return None;
        }
        Some(self.cfg.stall_cycles)
    }

    /// Consult at a memory line read. Returns the bit flips to apply to
    /// the line's SEC-DED codeword, if any.
    pub fn mem_fault(&mut self, now_cycle: u64) -> Option<MemFault> {
        if !self.enabled {
            return None;
        }
        let kind = match self.scripted(2, now_cycle) {
            Some(k) => k,
            None => {
                if self.cfg.rate <= 0.0 || !self.mem_rng.chance(self.cfg.rate) {
                    return None;
                }
                // Double-bit flips are the rare tail of the distribution.
                if self.mem_rng.below(8) == 0 {
                    FaultKind::MemFlipDouble
                } else {
                    FaultKind::MemFlipSingle
                }
            }
        };
        let bit_a = self.mem_rng.below(72) as u32;
        let bit_b = (bit_a + 1 + self.mem_rng.below(71) as u32) % 72;
        Some(MemFault { kind, bit_a, bit_b })
    }

    /// Consult at a protocol-engine dispatch. Returns the hiccup to
    /// inject, if any.
    pub fn engine_hiccup(&mut self, now_cycle: u64) -> Option<EngineHiccup> {
        if !self.enabled {
            return None;
        }
        let scripted = self.scripted(3, now_cycle).is_some();
        if !scripted && (self.cfg.rate <= 0.0 || !self.engine_rng.chance(self.cfg.rate)) {
            return None;
        }
        Some(EngineHiccup {
            kind: FaultKind::EngineHiccup,
        })
    }

    /// Record the resolution of one injected fault. Must be called
    /// exactly once per decision returned by the consult methods — that
    /// discipline is what makes `corrected + escalated == injected` a
    /// structural identity rather than a hope.
    pub fn note_recovery(
        &mut self,
        kind: FaultKind,
        corrected: bool,
        mttr_cycles: u64,
        retransmits: u64,
    ) {
        self.report.injected += 1;
        if corrected {
            self.report.corrected += 1;
        } else {
            self.report.escalated += 1;
        }
        self.report.retransmits += retransmits;
        self.report.recovery_cycles += mttr_cycles;
        *self.report.by_kind.entry(kind).or_insert(0) += 1;
    }

    /// The ledger so far.
    pub fn report(&self) -> &AvailabilityReport {
        &self.report
    }

    /// Scripted events not yet fired (e.g. scheduled past the end of the
    /// run); useful for experiment drivers to warn about dead script
    /// entries.
    pub fn unfired_scripted(&self) -> usize {
        self.schedule.len() - self.cursors.iter().sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consult_all(p: &mut FaultPlane, cycles: impl Iterator<Item = u64>) -> Vec<String> {
        let mut log = Vec::new();
        for c in cycles {
            if let Some(f) = p.packet_fault(c) {
                log.push(format!("pkt@{c}:{:?}", f));
            }
            if let Some(s) = p.router_stall(c) {
                log.push(format!("stall@{c}:{s}"));
            }
            if let Some(f) = p.mem_fault(c) {
                log.push(format!("mem@{c}:{:?}", f));
            }
            if p.engine_hiccup(c).is_some() {
                log.push(format!("eng@{c}"));
            }
        }
        log
    }

    #[test]
    fn disabled_plane_never_fires_and_never_draws() {
        let mut p = FaultPlane::new(FaultConfig::default(), 0xB10_CA5);
        assert!(!p.enabled());
        let before = p.packet_rng.clone();
        assert!(consult_all(&mut p, 0..10_000).is_empty());
        // No PRNG state advanced: a zero-rate run is bit-identical to a
        // fault-free one by construction.
        assert_eq!(p.packet_rng, before);
        assert!(p.report().is_consistent());
        assert!(!p.report().any());
    }

    #[test]
    fn same_seed_same_decisions() {
        let cfg = FaultConfig::seeded(42, 0.01);
        let mut a = FaultPlane::new(cfg.clone(), 7);
        let mut b = FaultPlane::new(cfg, 7);
        let la = consult_all(&mut a, 0..50_000);
        let lb = consult_all(&mut b, 0..50_000);
        assert!(!la.is_empty(), "rate 1% over 50k consults fired");
        assert_eq!(la, lb, "bit-identical fault sequences");
    }

    #[test]
    fn different_machine_seed_different_interleaving() {
        let cfg = FaultConfig::seeded(42, 0.01);
        let mut a = FaultPlane::new(cfg.clone(), 1);
        let mut b = FaultPlane::new(cfg, 2);
        assert_ne!(
            consult_all(&mut a, 0..50_000),
            consult_all(&mut b, 0..50_000)
        );
    }

    #[test]
    fn categories_are_independent_streams() {
        let cfg = FaultConfig::seeded(9, 0.02);
        // Plane A consults only memory; plane B consults packets first.
        let mut a = FaultPlane::new(cfg.clone(), 0);
        let mut b = FaultPlane::new(cfg, 0);
        for c in 0..10_000 {
            b.packet_fault(c);
        }
        let ma: Vec<_> = (0..10_000).filter_map(|c| a.mem_fault(c)).collect();
        let mb: Vec<_> = (0..10_000).filter_map(|c| b.mem_fault(c)).collect();
        assert_eq!(ma, mb, "packet consults must not shift memory draws");
    }

    #[test]
    fn scripted_events_fire_once_at_their_cycle() {
        let cfg =
            FaultConfig::scripted("corrupt@100, flap@100, flip2@500, stall@2, hiccup@7").unwrap();
        let mut p = FaultPlane::new(cfg, 0);
        assert!(p.packet_fault(50).is_none(), "not due yet");
        let f1 = p.packet_fault(100).expect("corrupt due");
        assert_eq!(f1.kind, FaultKind::PacketCorrupt);
        let f2 = p.packet_fault(100).expect("flap due, one per consult");
        assert_eq!(f2.kind, FaultKind::LinkFlap);
        assert!(p.packet_fault(10_000).is_none(), "script exhausted");
        assert_eq!(p.router_stall(3), Some(60));
        assert!(p.engine_hiccup(7).is_some());
        let m = p.mem_fault(600).expect("flip2 due");
        assert_eq!(m.kind, FaultKind::MemFlipDouble);
        assert_ne!(m.bit_a, m.bit_b);
        assert_eq!(p.unfired_scripted(), 0);
    }

    #[test]
    fn note_recovery_keeps_the_identity() {
        let mut p = FaultPlane::new(FaultConfig::seeded(1, 0.05), 0);
        let mut fired = 0;
        for c in 0..5_000 {
            if let Some(f) = p.packet_fault(c) {
                fired += 1;
                let corrected = f.failed_attempts <= p.cfg().retry_budget;
                p.note_recovery(f.kind, corrected, 10, f.failed_attempts as u64);
            }
            if let Some(m) = p.mem_fault(c) {
                fired += 1;
                p.note_recovery(m.kind, m.kind == FaultKind::MemFlipSingle, 40, 0);
            }
        }
        let r = p.report();
        assert!(fired > 0);
        assert_eq!(r.injected, fired);
        assert!(r.is_consistent());
        assert!(r.mttr_cycles() > 0);
    }

    #[test]
    fn mem_fault_bits_always_distinct_and_in_codeword() {
        let mut p = FaultPlane::new(FaultConfig::seeded(3, 1.0), 0);
        for c in 0..1_000 {
            let m = p.mem_fault(c).expect("rate 1.0 always fires");
            assert!(m.bit_a < 72 && m.bit_b < 72);
            assert_ne!(m.bit_a, m.bit_b);
        }
    }
}
