//! Deterministic fault injection for the Piranha simulator.
//!
//! Paper §2.7 motivates the programmable protocol engines with RAS
//! features — memory mirroring, persistent regions, recovery protocols —
//! but a simulator only earns trust in those paths by actually failing.
//! This crate provides the *injection* side: a [`FaultConfig`] describing
//! a seeded rate and/or an explicit script of typed fault events, a
//! [`FaultSchedule`] compiled from it, and a [`FaultPlane`] the machine
//! consults at its dispatch points (packet send, memory read, protocol
//! engine dispatch, router hop). Recovery lives where the paper puts it —
//! CRC/retransmit in `piranha-net`, SEC-DED ECC in `piranha-mem`, TSRF
//! timeout/replay in `piranha-protocol`, mirroring failover through
//! `RasPolicy` — and reports back through [`FaultPlane::note_recovery`],
//! which keeps the availability ledger ([`AvailabilityReport`])
//! structurally consistent: every injected fault is counted exactly once
//! as corrected or escalated.
//!
//! Determinism contract: all draws come from [`piranha_kernel::Prng`]
//! streams derived from the fault seed, one independent stream per fault
//! category, consumed only when a consult actually happens. A disabled
//! plane (zero rate, empty script) performs *zero* draws and adds *zero*
//! latency, so a zero-rate run is bit-identical to a fault-free one.

#![warn(missing_docs)]

pub mod plane;
pub mod report;
pub mod schedule;

pub use plane::{EngineHiccup, FaultPlane, MemFault, PacketFault};
pub use report::AvailabilityReport;
pub use schedule::{FaultConfig, FaultKind, FaultSchedule, ScriptedFault};
