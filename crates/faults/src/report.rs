//! The availability ledger attached to a run's results.

use std::collections::BTreeMap;

use crate::schedule::FaultKind;

/// Counts of faults injected and how each was handled, plus the repair
/// latency they cost. Attached to `RunResult` and folded into its
/// fingerprint, so two runs only fingerprint-match when they saw the
/// same faults handled the same way.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AvailabilityReport {
    /// Total faults injected (scripted + random).
    pub injected: u64,
    /// Faults repaired transparently (CRC retransmit within budget, ECC
    /// single-bit scrub, engine replay, router stall absorbed).
    pub corrected: u64,
    /// Faults that exhausted their first-line recovery and escalated
    /// (retry budget blown, double-bit error → mirroring failover).
    pub escalated: u64,
    /// Packet retransmissions performed (can exceed `injected`: one
    /// flap may take several attempts).
    pub retransmits: u64,
    /// Total repair latency in CPU cycles, summed over faults.
    pub recovery_cycles: u64,
    /// Injections per fault kind.
    pub by_kind: BTreeMap<FaultKind, u64>,
    /// Measured-window slowdown versus the fault-free baseline of the
    /// same configuration (1.0 = no slowdown); filled in by experiment
    /// drivers that run the paired baseline.
    pub slowdown: Option<f64>,
}

impl AvailabilityReport {
    /// Mean time to repair, in cycles per injected fault (0 when no
    /// faults were injected).
    pub fn mttr_cycles(&self) -> u64 {
        self.recovery_cycles.checked_div(self.injected).unwrap_or(0)
    }

    /// The structural identity every run must satisfy: each injected
    /// fault was resolved exactly once.
    pub fn is_consistent(&self) -> bool {
        self.corrected + self.escalated == self.injected
            && self.by_kind.values().sum::<u64>() == self.injected
    }

    /// Whether any fault was injected.
    pub fn any(&self) -> bool {
        self.injected > 0
    }

    /// Fold another ledger into this one (counts add, per-kind maps
    /// union). Used to aggregate per-lane ledgers of a partitioned
    /// machine into one machine-wide report; merging consistent reports
    /// yields a consistent report. `slowdown` is a run-level ratio, not
    /// a count — it stays whatever the caller set (lane ledgers never
    /// carry one).
    pub fn merge(&mut self, other: &AvailabilityReport) {
        self.injected += other.injected;
        self.corrected += other.corrected;
        self.escalated += other.escalated;
        self.retransmits += other.retransmits;
        self.recovery_cycles += other.recovery_cycles;
        for (&kind, &count) in &other.by_kind {
            *self.by_kind.entry(kind).or_insert(0) += count;
        }
    }

    /// A stable digest string folded into `RunResult::fingerprint` —
    /// identical reports (including the all-zero disabled one) digest
    /// identically.
    pub fn digest(&self) -> String {
        format!(
            "inj{}cor{}esc{}ret{}rec{}",
            self.injected, self.corrected, self.escalated, self.retransmits, self.recovery_cycles
        )
    }

    /// Serialize as a JSON object (hand-rolled; no serde in this
    /// workspace).
    pub fn to_json(&self) -> String {
        let by_kind: Vec<String> = self
            .by_kind
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", k.token(), v))
            .collect();
        let slowdown = match self.slowdown {
            Some(s) => format!("{s:.6}"),
            None => "null".to_string(),
        };
        format!(
            "{{\"injected\":{},\"corrected\":{},\"escalated\":{},\"retransmits\":{},\"recovery_cycles\":{},\"mttr_cycles\":{},\"slowdown\":{},\"by_kind\":{{{}}}}}",
            self.injected,
            self.corrected,
            self.escalated,
            self.retransmits,
            self.recovery_cycles,
            self.mttr_cycles(),
            slowdown,
            by_kind.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_consistent_and_quiet() {
        let r = AvailabilityReport::default();
        assert!(r.is_consistent());
        assert!(!r.any());
        assert_eq!(r.mttr_cycles(), 0);
        assert_eq!(r.digest(), "inj0cor0esc0ret0rec0");
    }

    #[test]
    fn consistency_requires_exact_resolution() {
        let mut r = AvailabilityReport {
            injected: 3,
            corrected: 2,
            escalated: 1,
            ..Default::default()
        };
        r.by_kind.insert(FaultKind::LinkFlap, 3);
        assert!(r.is_consistent());
        r.corrected = 3;
        assert!(!r.is_consistent(), "double-resolved fault detected");
    }

    #[test]
    fn merge_sums_counts_and_unions_kinds() {
        let mut a = AvailabilityReport {
            injected: 2,
            corrected: 2,
            retransmits: 1,
            recovery_cycles: 10,
            ..Default::default()
        };
        a.by_kind.insert(FaultKind::LinkFlap, 2);
        let mut b = AvailabilityReport {
            injected: 3,
            corrected: 2,
            escalated: 1,
            recovery_cycles: 30,
            ..Default::default()
        };
        b.by_kind.insert(FaultKind::LinkFlap, 1);
        b.by_kind.insert(FaultKind::MemFlipDouble, 2);
        a.merge(&b);
        assert_eq!(a.injected, 5);
        assert_eq!(a.corrected, 4);
        assert_eq!(a.escalated, 1);
        assert_eq!(a.retransmits, 1);
        assert_eq!(a.recovery_cycles, 40);
        assert_eq!(a.by_kind[&FaultKind::LinkFlap], 3);
        assert_eq!(a.by_kind[&FaultKind::MemFlipDouble], 2);
        assert!(
            a.is_consistent(),
            "merging consistent reports stays consistent"
        );
    }

    #[test]
    fn json_shape() {
        let mut r = AvailabilityReport {
            injected: 2,
            corrected: 1,
            escalated: 1,
            retransmits: 3,
            recovery_cycles: 100,
            slowdown: Some(1.25),
            ..Default::default()
        };
        r.by_kind.insert(FaultKind::PacketCorrupt, 2);
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"injected\":2"));
        assert!(j.contains("\"mttr_cycles\":50"));
        assert!(j.contains("\"corrupt\":2"));
        assert!(j.contains("\"slowdown\":1.25"));
        assert!(AvailabilityReport::default().to_json().contains("null"));
    }
}
