//! Fault configuration and schedules: what can fail, how often, when.
//!
//! A [`FaultConfig`] is carried inside the machine's `SystemConfig` (it
//! derives `Debug` so the memoized harness keys runs on it like every
//! other knob). It names a seed-driven random rate and/or an explicit
//! script of `kind@cycle` events; [`FaultSchedule::compile`] splits the
//! script into per-category queues so the [`crate::FaultPlane`] can fire
//! scripted events without scanning.

/// A typed fault event (paper §2.7's failure classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// An inter-chip link flap: the packet is lost in flight and must be
    /// retransmitted after the NACK timeout.
    LinkFlap,
    /// Packet payload bit-corruption: caught by the link CRC, NACKed,
    /// and retransmitted.
    PacketCorrupt,
    /// A transient router queue stall: the hop completes late.
    RouterStall,
    /// A memory single-bit flip: corrected in place by the SEC-DED
    /// scrub.
    MemFlipSingle,
    /// A memory double-bit flip: detected but uncorrectable by SEC-DED;
    /// escalates to mirroring failover when a mirror copy exists.
    MemFlipDouble,
    /// A protocol-engine hiccup: the engine's microcode watchdog expires
    /// and the transaction's TSRF entry is replayed from its inputs.
    EngineHiccup,
}

impl FaultKind {
    /// The short script token for this kind (`flap`, `corrupt`, `stall`,
    /// `flip1`, `flip2`, `hiccup`).
    pub fn token(self) -> &'static str {
        match self {
            FaultKind::LinkFlap => "flap",
            FaultKind::PacketCorrupt => "corrupt",
            FaultKind::RouterStall => "stall",
            FaultKind::MemFlipSingle => "flip1",
            FaultKind::MemFlipDouble => "flip2",
            FaultKind::EngineHiccup => "hiccup",
        }
    }

    /// Parse a script token back into its kind (the inverse of
    /// [`FaultKind::token`]); used by fault-script parsing and by the
    /// persistent result store when rebuilding an availability ledger's
    /// per-kind map from its JSON envelope.
    pub fn from_token(tok: &str) -> Option<Self> {
        Some(match tok {
            "flap" => FaultKind::LinkFlap,
            "corrupt" => FaultKind::PacketCorrupt,
            "stall" => FaultKind::RouterStall,
            "flip1" => FaultKind::MemFlipSingle,
            "flip2" => FaultKind::MemFlipDouble,
            "hiccup" => FaultKind::EngineHiccup,
            _ => return None,
        })
    }
}

/// One explicitly scheduled fault: fire `kind` at the first consult of
/// its category at or after `at_cycle` (CPU cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// What fails.
    pub kind: FaultKind,
    /// When (CPU cycles since simulation start).
    pub at_cycle: u64,
}

/// The fault-injection knobs, carried in `SystemConfig`.
///
/// `Default` is fully disabled: zero rate, empty script, so existing
/// configurations are bit-for-bit unaffected.
///
/// # Examples
///
/// ```
/// use piranha_faults::FaultConfig;
/// assert!(!FaultConfig::default().enabled());
/// assert!(FaultConfig::seeded(42, 1e-4).enabled());
/// let f = FaultConfig::scripted("corrupt@1000, flip1@5000; hiccup@9000").unwrap();
/// assert_eq!(f.script.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault PRNG streams (XORed with the machine seed so
    /// the same fault seed explores different interleavings per config).
    pub seed: u64,
    /// Probability that any one consult (packet send, memory read,
    /// engine dispatch, router hop) injects a fault. Zero disables
    /// random injection.
    pub rate: f64,
    /// Explicitly scheduled faults, fired on top of the random rate.
    pub script: Vec<ScriptedFault>,
    /// Retransmit attempts allowed before a packet fault escalates.
    pub retry_budget: u32,
    /// Cycles for the NACK to reach the sender (per retransmit).
    pub nack_cycles: u64,
    /// Base cycles of exponential backoff (doubles per attempt).
    pub backoff_cycles: u64,
    /// Cycles for the ECC scrub that corrects a single-bit flip.
    pub scrub_cycles: u64,
    /// Cycles to restore a line from its mirror after an uncorrectable
    /// (double-bit) error.
    pub failover_cycles: u64,
    /// Cycles a transient router stall delays one hop.
    pub stall_cycles: u64,
    /// Cycles of the protocol-engine watchdog timeout before a TSRF
    /// replay.
    pub replay_timeout_cycles: u64,
    /// When nonzero, lines `[0, mirror_lines)` on every node are
    /// auto-registered as mirrored through `RasPolicy`, so double-bit
    /// escalations have a mirror to fail over to.
    pub mirror_lines: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            rate: 0.0,
            script: Vec::new(),
            retry_budget: 4,
            nack_cycles: 20,
            backoff_cycles: 16,
            scrub_cycles: 40,
            failover_cycles: 200,
            stall_cycles: 60,
            replay_timeout_cycles: 50,
            mirror_lines: 0,
        }
    }
}

impl FaultConfig {
    /// A purely random schedule: every consult injects with probability
    /// `rate`, drawn from streams seeded by `seed`.
    pub fn seeded(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            rate,
            mirror_lines: 64,
            ..Self::default()
        }
    }

    /// Parse an explicit script: comma- or semicolon-separated
    /// `kind@cycle` entries, where `kind` is one of `flap`, `corrupt`,
    /// `stall`, `flip1`, `flip2`, `hiccup`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed entry.
    pub fn scripted(script: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for entry in script.split([',', ';']) {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (tok, cycle) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault script entry {entry:?}: expected kind@cycle"))?;
            let kind = FaultKind::from_token(tok.trim())
                .ok_or_else(|| format!("fault script entry {entry:?}: unknown kind {tok:?}"))?;
            let at_cycle: u64 = cycle
                .trim()
                .parse()
                .map_err(|e| format!("fault script entry {entry:?}: bad cycle ({e})"))?;
            events.push(ScriptedFault { kind, at_cycle });
        }
        events.sort_by_key(|e| e.at_cycle);
        Ok(FaultConfig {
            script: events,
            mirror_lines: 64,
            ..Self::default()
        })
    }

    /// Whether this configuration can inject anything at all. A disabled
    /// config costs zero PRNG draws and zero latency at every consult.
    pub fn enabled(&self) -> bool {
        self.rate > 0.0 || !self.script.is_empty()
    }

    /// Exponential-backoff delay (cycles) before retransmit `attempt`
    /// (1-based): `nack + backoff * 2^(attempt-1)`, saturating.
    pub fn retransmit_delay_cycles(&self, attempt: u32) -> u64 {
        let factor = 1u64 << (attempt.saturating_sub(1)).min(16);
        self.nack_cycles
            .saturating_add(self.backoff_cycles.saturating_mul(factor))
    }
}

/// The script compiled into per-category firing queues (each sorted by
/// cycle), so the plane pops scripted events in O(1) per consult.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    /// Packet-category events (`flap`, `corrupt`), sorted by cycle.
    pub packet: Vec<ScriptedFault>,
    /// Router-stall events, sorted by cycle.
    pub stall: Vec<ScriptedFault>,
    /// Memory-flip events (`flip1`, `flip2`), sorted by cycle.
    pub mem: Vec<ScriptedFault>,
    /// Engine-hiccup events, sorted by cycle.
    pub engine: Vec<ScriptedFault>,
}

impl FaultSchedule {
    /// Split a config's script into the per-category queues.
    pub fn compile(cfg: &FaultConfig) -> Self {
        let mut s = FaultSchedule::default();
        for ev in &cfg.script {
            match ev.kind {
                FaultKind::LinkFlap | FaultKind::PacketCorrupt => s.packet.push(*ev),
                FaultKind::RouterStall => s.stall.push(*ev),
                FaultKind::MemFlipSingle | FaultKind::MemFlipDouble => s.mem.push(*ev),
                FaultKind::EngineHiccup => s.engine.push(*ev),
            }
        }
        s
    }

    /// Total scripted events across all categories.
    pub fn len(&self) -> usize {
        self.packet.len() + self.stall.len() + self.mem.len() + self.engine.len()
    }

    /// Whether no events are scripted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let f = FaultConfig::default();
        assert!(!f.enabled());
        assert_eq!(f.rate, 0.0);
        assert!(f.script.is_empty());
    }

    #[test]
    fn script_parses_all_kinds_and_sorts() {
        let f = FaultConfig::scripted("flip2@900, flap@100; corrupt@200, stall@50, hiccup@400")
            .unwrap();
        assert!(f.enabled());
        let kinds: Vec<_> = f.script.iter().map(|e| e.kind.token()).collect();
        assert_eq!(kinds, vec!["stall", "flap", "corrupt", "hiccup", "flip2"]);
        let s = FaultSchedule::compile(&f);
        assert_eq!(s.packet.len(), 2);
        assert_eq!(s.stall.len(), 1);
        assert_eq!(s.mem.len(), 1);
        assert_eq!(s.engine.len(), 1);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn script_rejects_garbage() {
        assert!(FaultConfig::scripted("flap").is_err());
        assert!(FaultConfig::scripted("meteor@100").is_err());
        assert!(FaultConfig::scripted("flap@soon").is_err());
        assert!(FaultConfig::scripted("  ,  ;  ").unwrap().script.is_empty());
    }

    #[test]
    fn token_round_trips() {
        for k in [
            FaultKind::LinkFlap,
            FaultKind::PacketCorrupt,
            FaultKind::RouterStall,
            FaultKind::MemFlipSingle,
            FaultKind::MemFlipDouble,
            FaultKind::EngineHiccup,
        ] {
            assert_eq!(FaultKind::from_token(k.token()), Some(k));
        }
    }

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let f = FaultConfig::default();
        assert_eq!(f.retransmit_delay_cycles(1), 20 + 16);
        assert_eq!(f.retransmit_delay_cycles(2), 20 + 32);
        assert_eq!(f.retransmit_delay_cycles(3), 20 + 64);
        // Large attempts cap the shift instead of overflowing.
        assert!(f.retransmit_delay_cycles(200) > f.retransmit_delay_cycles(3));
    }
}
