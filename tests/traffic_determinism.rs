//! Determinism guards for the open-loop traffic subsystem
//! (`piranha-traffic`):
//!
//! - same seed + same `TrafficConfig` ⇒ bit-identical
//!   `RunResult::fingerprint()` and identical latency estimates at any
//!   `--parallel` lane-worker count (1, 2, 4);
//! - the admission ledger conserves structurally under arbitrary rates,
//!   queue depths, and overflow policies:
//!   `accepted + dropped + deferred == generated`;
//! - a zero-rate traffic config — even with non-default seed, depth,
//!   and overflow fields — is *exactly* the closed-loop machine: no
//!   stream is wrapped, no PRNG is drawn, golden fingerprints are
//!   byte-for-byte unchanged.

use proptest::prelude::*;

use piranha::experiments;
use piranha::harness::{run_config, run_config_parallel, run_config_traffic, RunScale};
use piranha::{OverflowPolicy, SystemConfig, TrafficConfig};

fn two_chip_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
    cfg.cpu_quantum = 500;
    cfg
}

fn loaded_cfg(traffic: TrafficConfig) -> SystemConfig {
    let mut cfg = two_chip_cfg();
    cfg.traffic = traffic;
    cfg
}

/// The whole loaded run — event order, arrival schedule, latency
/// histogram — is invariant under the lane-worker count: the quantum
/// engine only changes wall-clock, never results.
#[test]
fn traffic_runs_are_worker_invariant() {
    let w = experiments::oltp_bounded(8);
    let cfg = loaded_cfg(TrafficConfig::poisson(400.0));
    let runs: Vec<_> = [1, 2, 4]
        .iter()
        .map(|&n| run_config_parallel(cfg.clone(), &w, RunScale::completion(), n))
        .collect();
    let t0 = runs[0].traffic.as_ref().expect("traffic summary present");
    assert!(t0.ledger.completed > 0, "the load actually ran");
    for r in &runs[1..] {
        assert_eq!(
            runs[0].fingerprint(),
            r.fingerprint(),
            "lane workers changed a loaded run"
        );
        let t = r.traffic.as_ref().expect("traffic summary present");
        assert_eq!(t0.ledger, t.ledger, "admission ledger diverged");
        assert_eq!(
            (t0.p50_ns(), t0.p95_ns(), t0.p99_ns()),
            (t.p50_ns(), t.p95_ns(), t.p99_ns()),
            "latency estimate diverged"
        );
        assert_eq!(runs[0].window, r.window);
    }
}

/// Different traffic seeds draw different arrival schedules, which the
/// fingerprint (it folds in the run's timing) must expose.
#[test]
fn different_traffic_seeds_diverge() {
    let w = experiments::oltp_bounded(8);
    let mut a_cfg = TrafficConfig::poisson(400.0);
    a_cfg.seed = 1;
    let mut b_cfg = TrafficConfig::poisson(400.0);
    b_cfg.seed = 2;
    let a = run_config(loaded_cfg(a_cfg), &w, RunScale::completion());
    let b = run_config(loaded_cfg(b_cfg), &w, RunScale::completion());
    assert_ne!(
        a.fingerprint(),
        b.fingerprint(),
        "independent arrival seeds produced identical runs"
    );
}

/// A zero-rate traffic config — with every *other* field perturbed — is
/// bit-identical to the closed-loop baseline, which is what keeps the
/// golden fingerprints valid whenever `--traffic` is absent.
#[test]
fn zero_rate_traffic_leaves_closed_loop_runs_unchanged() {
    let w = experiments::oltp_bounded(6);
    for cfg in [SystemConfig::piranha_pn(2), two_chip_cfg()] {
        let base = run_config(cfg.clone(), &w, RunScale::completion());
        let mut zero = cfg.clone();
        zero.traffic = TrafficConfig {
            rate_tpmc: 0.0,
            seed: 0xDEAD_BEEF,
            queue_depth: 2,
            overflow: OverflowPolicy::Defer,
            ..TrafficConfig::default()
        };
        let z = run_config(zero, &w, RunScale::completion());
        assert_eq!(
            base.fingerprint(),
            z.fingerprint(),
            "{}: a disabled traffic plane perturbed the simulation",
            cfg.name
        );
        assert!(z.traffic.is_none(), "no summary without traffic");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Every generated arrival is classified exactly once, at any rate,
    /// queue depth, and overflow policy — and every commit was both
    /// admitted and latency-stamped.
    #[test]
    fn admission_ledger_conserves(
        seed in 0u64..10_000,
        rate in 50.0f64..2_000.0,
        depth in 1usize..32,
        defer in proptest::bool::ANY,
    ) {
        let w = experiments::oltp_bounded(5);
        let traffic = TrafficConfig {
            rate_tpmc: rate,
            seed,
            queue_depth: depth,
            overflow: if defer { OverflowPolicy::Defer } else { OverflowPolicy::Drop },
            ..TrafficConfig::default()
        };
        let r = run_config_traffic(two_chip_cfg(), &w, RunScale::completion(), traffic);
        let t = r.traffic.as_ref().expect("traffic summary present");
        prop_assert!(t.ledger.conserved(), "seed {} rate {}: {:?}", seed, rate, t.ledger);
        prop_assert_eq!(
            t.ledger.accepted + t.ledger.dropped + t.ledger.deferred,
            t.ledger.generated,
            "classification must be exhaustive and exclusive"
        );
        prop_assert!(t.ledger.completed <= t.ledger.accepted + t.ledger.deferred);
        prop_assert_eq!(
            t.latency.count(),
            t.ledger.completed,
            "every commit carries exactly one latency sample"
        );
        prop_assert_eq!(
            r.committed_txns,
            Some(t.ledger.completed),
            "machine-level commits and plane-level completions agree"
        );
    }
}
