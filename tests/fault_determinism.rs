//! Fault-injection determinism guards (paper §2.7 exercise):
//!
//! - same seed + same `FaultSchedule` ⇒ bit-identical
//!   `RunResult::fingerprint()`;
//! - a zero-rate schedule ⇒ fingerprint identical to the fault-free
//!   baseline (the disabled plane draws nothing and delays nothing);
//! - a scripted schedule fires every event exactly once and the
//!   availability ledger stays consistent;
//! - a bounded workload run to completion commits identical work with
//!   and without recoverable faults.

use piranha::experiments;
use piranha::harness::{run_config, RunScale};
use piranha::workloads::{SynthConfig, Workload};
use piranha::{FaultConfig, Machine, SystemConfig};

fn sharing_workload() -> Workload {
    Workload::Synth(SynthConfig {
        load_frac: 0.25,
        store_frac: 0.2,
        shared_frac: 0.5,
        shared_bytes: 512 << 10,
        private_bytes: 256 << 10,
        ..SynthConfig::light()
    })
}

fn two_chip_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
    cfg.cpu_quantum = 500;
    cfg
}

fn faulted_cfg(seed: u64, rate: f64) -> SystemConfig {
    let mut cfg = two_chip_cfg();
    cfg.faults = FaultConfig::seeded(seed, rate);
    cfg
}

/// Same seed + same schedule ⇒ the whole run is bit-identical, faults,
/// recoveries, and all.
#[test]
fn same_seed_and_schedule_are_bit_identical() {
    let w = sharing_workload();
    let scale = RunScale::tiny();
    let a = run_config(faulted_cfg(42, 2e-3), &w, scale);
    let b = run_config(faulted_cfg(42, 2e-3), &w, scale);
    assert!(a.availability.injected > 0, "the rate actually injected");
    assert!(a.availability.is_consistent());
    assert_eq!(a.fingerprint(), b.fingerprint(), "replay diverged");
    assert_eq!(a.availability, b.availability);
}

/// A zero-rate, script-free schedule is *exactly* the fault-free
/// machine: the disabled plane performs no PRNG draws and adds no
/// latency anywhere.
#[test]
fn zero_rate_schedule_matches_the_fault_free_baseline() {
    let w = sharing_workload();
    let scale = RunScale::tiny();
    let base = run_config(two_chip_cfg(), &w, scale);
    let zero = run_config(faulted_cfg(7, 0.0), &w, scale);
    assert_eq!(
        base.fingerprint(),
        zero.fingerprint(),
        "a zero-rate fault plane perturbed the simulation"
    );
    assert_eq!(zero.availability.injected, 0);
}

/// Different fault seeds explore different injection points, which the
/// fingerprint (it folds in the availability digest) must expose.
#[test]
fn different_fault_seeds_diverge() {
    let w = sharing_workload();
    let scale = RunScale::tiny();
    let a = run_config(faulted_cfg(1, 2e-3), &w, scale);
    let b = run_config(faulted_cfg(2, 2e-3), &w, scale);
    assert_ne!(
        a.fingerprint(),
        b.fingerprint(),
        "independent fault seeds produced identical runs"
    );
}

/// Every scripted event fires exactly once, is ledgered exactly once,
/// and the double-bit flip escalates to the mirroring failover.
#[test]
fn scripted_schedule_fires_every_event_once() {
    let mut cfg = two_chip_cfg();
    cfg.faults =
        FaultConfig::scripted("corrupt@50, flap@60, stall@80, hiccup@100, flip1@200, flip2@300")
            .expect("script parses");
    let mut m = Machine::new(cfg, &sharing_workload());
    let r = m.run(2_000, 10_000);
    assert_eq!(m.fault_plane().unfired_scripted(), 0, "events left behind");
    assert_eq!(r.availability.injected, 6);
    assert!(r.availability.is_consistent());
    assert!(
        r.availability.escalated >= 1,
        "the double-bit flip must escalate: {:?}",
        r.availability
    );
    assert!(r.availability.retransmits >= 2, "corrupt + flap retransmit");
    m.check_coherence();
}

/// Faults never lose work: a bounded OLTP run to completion commits the
/// same transaction count with and without a recoverable schedule, and
/// only the cycle counts may differ.
#[test]
fn completion_runs_commit_identical_work_under_faults() {
    let w = experiments::oltp_bounded(8);
    let scale = RunScale::completion();
    let base = run_config(two_chip_cfg(), &w, scale);
    let faulted = run_config(faulted_cfg(42, 2e-3), &w, scale);
    assert!(faulted.availability.injected > 0);
    assert!(faulted.availability.is_consistent());
    assert_eq!(
        faulted.committed_txns, base.committed_txns,
        "recoverable faults lost committed work"
    );
    assert!(
        base.committed_txns.unwrap_or(0) >= 8 * 4,
        "all streams ran out"
    );
}
