//! Machine-level guards for the pluggable fabric (`piranha-net`):
//!
//! - bounded queue disciplines conserve work under a real OLTP
//!   workload: every run commits exactly the baseline's transactions,
//!   the packet ledger closes (`delivered + retransmits == walks`,
//!   `drops == retransmits` without link faults), and PFC never drops;
//! - fabric runs are worker-invariant: the same `nodes × topology ×
//!   queue` point fingerprints identically (and reports identical
//!   fabric counters) at 1, 2, and 4 lane workers;
//! - the pluggable machinery is invisible by default: an explicit
//!   `TopologyKind::Auto` + unbounded queue config is bit-identical to
//!   the untouched preset (the golden set itself is diffed by
//!   `tests/golden_fingerprint.rs`).

use piranha::experiments;
use piranha::harness::{run_config, run_config_parallel_machine, RunScale};
use piranha::types::Duration;
use piranha::{QueueDiscipline, SystemConfig, TopologyKind};

/// A 16-node machine of single-CPU chips on an explicit fabric.
fn fabric_cfg(topology: TopologyKind, queue: QueueDiscipline) -> SystemConfig {
    let mut cfg = SystemConfig::piranha_pn(1).scaled_to_chips(16);
    cfg.topology = topology;
    cfg.net.queue = queue;
    cfg
}

fn congested() -> Duration {
    Duration::from_ns(piranha::net::CONGESTED_CAPACITY_NS)
}

/// Every bounded discipline commits exactly the work of the lossless
/// baseline — congestion delays packets, it never loses them — and the
/// fabric's packet ledger closes on every combination.
#[test]
fn bounded_disciplines_conserve_work() {
    let w = experiments::oltp_bounded(2);
    for topology in [
        TopologyKind::Mesh,
        TopologyKind::Torus,
        TopologyKind::FatTree,
    ] {
        let base = run_config(
            fabric_cfg(topology, QueueDiscipline::unbounded()),
            &w,
            RunScale::completion(),
        );
        let base_committed = base.committed_txns.expect("bounded workload reports work");
        assert!(base_committed > 0, "baseline must commit work");
        for queue in [
            QueueDiscipline::DropTail {
                capacity: congested(),
            },
            QueueDiscipline::LossyNack {
                capacity: congested(),
            },
            QueueDiscipline::Pfc {
                capacity: congested(),
            },
        ] {
            let (r, m) = run_config_parallel_machine(
                fabric_cfg(topology, queue),
                &w,
                RunScale::completion(),
                1,
            );
            let fs = m.fabric_stats();
            let label = format!("{}/{}", topology.label(), queue.label());
            assert_eq!(
                r.committed_txns,
                Some(base_committed),
                "{label}: a bounded fabric lost committed work"
            );
            assert_eq!(
                fs.delivered + fs.retransmits,
                fs.walks,
                "{label}: every walk must deliver or retransmit"
            );
            assert_eq!(
                fs.drops, fs.retransmits,
                "{label}: faultless runs retransmit only on drops"
            );
            if matches!(queue, QueueDiscipline::Pfc { .. }) {
                assert_eq!(fs.drops, 0, "{label}: PFC pauses instead of dropping");
            }
            assert!(
                fs.delivered > 0,
                "{label}: the fabric actually carried traffic"
            );
        }
    }
}

/// The same fabric point is bit-identical at any lane-worker count —
/// the per-pair lookahead bounds hold on every topology, so the
/// conservative engine never reorders an interaction.
#[test]
fn fabric_runs_are_worker_invariant() {
    let w = experiments::oltp_bounded(2);
    for (topology, queue) in [
        (
            TopologyKind::Torus,
            QueueDiscipline::DropTail {
                capacity: congested(),
            },
        ),
        (
            TopologyKind::FatTree,
            QueueDiscipline::Pfc {
                capacity: congested(),
            },
        ),
    ] {
        let runs: Vec<_> = [1usize, 2, 4]
            .iter()
            .map(|&n| {
                run_config_parallel_machine(
                    fabric_cfg(topology, queue),
                    &w,
                    RunScale::completion(),
                    n,
                )
            })
            .collect();
        let (r0, m0) = &runs[0];
        let fs0 = m0.fabric_stats();
        for (r, m) in &runs[1..] {
            assert_eq!(
                r0.fingerprint(),
                r.fingerprint(),
                "{}/{}: lane workers changed a fabric run",
                topology.label(),
                queue.label()
            );
            let fs = m.fabric_stats();
            assert_eq!(
                (
                    fs0.delivered,
                    fs0.walks,
                    fs0.deflections,
                    fs0.drops,
                    fs0.pauses
                ),
                (fs.delivered, fs.walks, fs.deflections, fs.drops, fs.pauses),
                "{}/{}: fabric counters diverged across workers",
                topology.label(),
                queue.label()
            );
            assert_eq!(fs0.node_deflections, fs.node_deflections);
        }
    }
}

/// An explicit `Auto` topology with the unbounded default queue is the
/// *same machine* as the untouched preset — the pluggable fabric only
/// exists when asked for, which is what keeps every golden fingerprint
/// valid.
#[test]
fn default_fabric_is_bit_identical_to_presets() {
    let w = experiments::oltp_bounded(3);
    for cfg in [
        SystemConfig::piranha_p8(),
        SystemConfig::piranha_pn(2).scaled_to_chips(2),
    ] {
        let base = run_config(cfg.clone(), &w, RunScale::completion());
        let mut explicit = cfg.clone();
        explicit.topology = TopologyKind::Auto;
        explicit.net.queue = QueueDiscipline::unbounded();
        let e = run_config(explicit, &w, RunScale::completion());
        assert_eq!(
            base.fingerprint(),
            e.fingerprint(),
            "{}: spelling out the default fabric perturbed the run",
            cfg.name
        );
    }
}
