//! Smoke tests of the experiment regenerators: at reduced scale, the
//! *direction* of every paper result must already hold.

use piranha::experiments::{self, RunScale};

fn tiny() -> RunScale {
    RunScale {
        warmup: 40_000,
        measure: 80_000,
        ..RunScale::tiny()
    }
}

#[test]
fn table1_lists_all_three_designs() {
    let t = experiments::table1();
    for needle in [
        "500 MHz",
        "1000 MHz",
        "1250 MHz",
        "8-way",
        "6-way",
        "16 ns / 24 ns",
    ] {
        assert!(t.contains(needle), "Table 1 missing {needle:?}:\n{t}");
    }
}

#[test]
fn fig5_oltp_ordering_holds() {
    let bars = experiments::fig5(&experiments::oltp(), tiny());
    let t = |name: &str| bars.iter().find(|b| b.name == name).unwrap().norm_time;
    // Paper ordering: P8 << OOO < INO < P1.
    assert!(t("P8") < 60.0, "P8 clearly beats OOO: {}", t("P8"));
    assert!(t("INO") > 110.0, "INO slower than OOO: {}", t("INO"));
    assert!(t("P1") > t("INO"), "P1 slower than INO");
    // Every bar decomposes into non-negative parts that sum to its time.
    for b in &bars {
        assert!(
            (b.busy + b.l2_hit + b.l2_miss - b.norm_time).abs() < 1.0,
            "{b:?}"
        );
        assert!(b.busy >= 0.0 && b.l2_hit >= 0.0 && b.l2_miss >= 0.0);
    }
}

#[test]
fn fig5_dss_ordering_holds() {
    let bars = experiments::fig5(&experiments::dss(), tiny());
    let t = |name: &str| bars.iter().find(|b| b.name == name).unwrap().norm_time;
    assert!(t("P8") < 80.0, "P8 beats OOO on DSS: {}", t("P8"));
    assert!(
        t("P1") > 250.0,
        "single Piranha core is much slower: {}",
        t("P1")
    );
    // DSS is compute-bound: the busy component dominates P1's bar.
    let p1 = bars.iter().find(|b| b.name == "P1").unwrap();
    assert!(p1.busy / p1.norm_time > 0.75, "DSS is CPU-bound: {p1:?}");
    // OLTP margin (2.3-2.9x) exceeds the DSS margin (~2.3x) in the
    // paper; check the weaker directional claim.
    let oltp = experiments::fig5(&experiments::oltp(), tiny());
    let p8_oltp = oltp.iter().find(|b| b.name == "P8").unwrap().norm_time;
    assert!(
        p8_oltp < t("P8") + 25.0,
        "P8 margin on OLTP at least comparable"
    );
}

#[test]
fn fig6_speedup_and_breakdown_trends() {
    let speedups = experiments::fig6a(tiny());
    let get = |n: &str| speedups.iter().find(|(x, _)| x == n).unwrap().1;
    assert!(get("P2") > 1.6, "P2: {}", get("P2"));
    assert!(get("P4") > get("P2"));
    assert!(get("P8") > 5.0, "near-linear CMP scaling: {}", get("P8"));

    let rows = experiments::fig6b(tiny());
    for (name, h, f, m) in &rows {
        assert!((h + f + m - 1.0).abs() < 1e-9, "{name} fractions sum to 1");
    }
    let hit = |i: usize| rows[i].1;
    let fwd = |i: usize| rows[i].2;
    assert_eq!(rows[0].2, 0.0, "P1 has no forwards");
    assert!(hit(0) > hit(3), "L2-hit fraction falls with more CPUs");
    assert!(fwd(3) > 0.25, "P8 forwards a large fraction: {}", fwd(3));
    // At this reduced scale P1's shared structures are still warming
    // (its L2 fills 8x slower per CPU-instruction than P8's), so the
    // paper's "flat miss fraction" is only asserted directionally here;
    // the full-scale run in EXPERIMENTS.md shows the flat profile.
    assert!(
        rows[3].3 <= rows[0].3 + 0.05,
        "adding CPUs must not inflate the memory-miss fraction: {rows:?}"
    );
}

#[test]
fn fig8_full_custom_extends_the_lead() {
    let bars = experiments::fig8(&experiments::dss(), tiny());
    let t = |name: &str| bars.iter().find(|b| b.name == name).unwrap().norm_time;
    assert!(
        t("P8F") < t("P8"),
        "full custom beats ASIC: {} vs {}",
        t("P8F"),
        t("P8")
    );
    assert!(t("P8") < t("OOO"));
}

#[test]
fn mem_page_hit_rate_is_meaningful() {
    let r = experiments::mem_pages(tiny());
    assert!(r > 0.02 && r < 0.95, "open-page policy produces hits: {r}");
}

#[test]
fn web_search_behaves_like_dss() {
    use piranha::workloads::{WebConfig, Workload};
    use piranha::{Machine, SystemConfig};
    let web = Workload::Web(WebConfig::paper_default());
    let mut ooo = Machine::new(SystemConfig::ooo(), &web);
    let r_ooo = ooo.run(30_000, 60_000);
    let mut p8 = Machine::new(SystemConfig::piranha_p8(), &web);
    let r_p8 = p8.run(30_000, 60_000);
    // §6: "similar to DSS" — compute-bound, and P8 still wins on
    // throughput.
    assert!(
        r_ooo.breakdown().busy > 0.5,
        "web search is compute-bound on OOO"
    );
    assert!(
        r_p8.speedup_over(&r_ooo) > 1.3,
        "CMP throughput advantage carries over"
    );
    p8.check_coherence();
}
