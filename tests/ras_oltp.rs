//! End-to-end RAS exercise on OLTP (paper §2.7): memory mirroring and
//! the persist barrier wired into a real bounded transaction run, with
//! mirror-log consistency asserted against home memory at the end.

use piranha::experiments;
use piranha::protocol::LineRange;
use piranha::types::LineAddr;
use piranha::{FaultConfig, Machine, SystemConfig};

fn two_chip_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
    cfg.cpu_quantum = 500;
    cfg
}

/// Every line any CPU can touch in these runs.
fn all_lines() -> LineRange {
    LineRange {
        start: LineAddr(0),
        end: LineAddr(1 << 32),
    }
}

/// An OLTP run with mirroring across the whole address range: the
/// mirror log fills as transactions commit home writes, faults fail
/// over to it, and at the end every mirror entry matches home memory.
#[test]
fn oltp_mirror_log_is_consistent_at_end_of_run() {
    let mut cfg = two_chip_cfg();
    cfg.faults = FaultConfig::seeded(42, 1e-3);
    let w = experiments::oltp_bounded(8);
    let mut m = Machine::new(cfg, &w);
    for node in 0..2 {
        m.ras_register_mirrored(node, all_lines());
    }
    let r = m.run_to_completion();
    assert!(r.availability.injected > 0, "faults were exercised");
    assert!(r.availability.is_consistent());
    let mirrored: usize = (0..2).map(|n| m.ras(n).mirror_entries().len()).sum();
    assert!(mirrored > 0, "OLTP home writes populated the mirror log");
    // The consistency check proper: every mirrored (line, version) must
    // equal the version home memory holds. (run_to_completion already
    // ran this once; assert it explicitly as the test's contract.)
    m.check_ras();
    m.check_coherence();
}

/// The persist barrier flushes exactly the dirty (cached but not yet
/// home-written) lines of its range, journals them, and a second
/// barrier with no intervening work finds nothing left to flush.
#[test]
fn persist_barrier_drains_dirty_lines_and_is_idempotent() {
    let w = experiments::oltp_bounded(0); // unbounded: fixed window below
    let mut m = Machine::new(two_chip_cfg(), &w);
    let _cap = m.ras_register_persistent(0, all_lines());
    m.run(2_000, 10_000);
    let flushed = m.ras_persist_barrier(0, all_lines());
    assert!(flushed > 0, "a warm OLTP run leaves dirty cached lines");
    let again = m.ras_persist_barrier(0, all_lines());
    assert_eq!(again, 0, "the barrier persisted everything the first time");
    m.check_ras();
}
