//! Persistent-store fidelity: results that travel through the on-disk
//! envelope come back **bit-identical**, corrupted entries degrade to
//! recomputation (never a panic, and the recompute repairs the entry),
//! and a killed-and-restarted sweep resumes from disk recomputing only
//! the rows it never finished.

use std::sync::Arc;

use piranha::experiments::{oltp_bounded, RunScale};
use piranha::harness::{cache_key, Harness, ResultStore, RunPlan, RunRequest};
use piranha::serve::DiskStore;
use piranha::workloads::Workload;
use piranha::{FaultConfig, SystemConfig};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("piranha-store-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn synth() -> Workload {
    Workload::Synth(piranha::workloads::SynthConfig::light())
}

/// A faulted multi-chip run to completion exercises every envelope
/// field family at once: availability ledger (with per-kind counts),
/// committed transactions, non-trivial metrics, and multi-CPU stats.
#[test]
fn faulted_run_survives_the_disk_round_trip_bit_identically() {
    let dir = tmpdir("fidelity");
    let store = DiskStore::open(&dir).unwrap();
    let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
    cfg.faults = FaultConfig::seeded(7, 1e-3);
    let w = oltp_bounded(5);
    let scale = RunScale::completion();

    let fresh = piranha::harness::run_config(cfg.clone(), &w, scale);
    let key = cache_key(&cfg, &w, scale);
    store.save(&key, &fresh);
    let loaded = store.load(&key).expect("entry just saved");

    assert_eq!(loaded.fingerprint(), fresh.fingerprint());
    assert_eq!(loaded.name, fresh.name);
    assert_eq!(loaded.window, fresh.window);
    assert_eq!(loaded.clock, fresh.clock);
    assert_eq!(loaded.committed_txns, fresh.committed_txns);
    assert_eq!(
        loaded.mem_page_hit_rate.to_bits(),
        fresh.mem_page_hit_rate.to_bits()
    );
    assert_eq!(loaded.availability, fresh.availability);
    assert!(
        loaded.availability.injected > 0,
        "the schedule must actually inject (otherwise this test proves \
         nothing about availability persistence)"
    );
    assert_eq!(loaded.cpus.len(), fresh.cpus.len());
    for (l, f) in loaded.cpus.iter().zip(&fresh.cpus) {
        // CoreStats carries no PartialEq; its Debug rendering covers
        // every field, which is exactly the fidelity being asserted.
        assert_eq!(format!("{l:?}"), format!("{f:?}"));
    }
    assert_eq!(
        loaded.metrics.entries, fresh.metrics.entries,
        "metric snapshot must round-trip exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_recompute_and_repair() {
    let dir = tmpdir("corrupt");
    let store: Arc<DiskStore> = Arc::new(DiskStore::open(&dir).unwrap());
    let cfg = SystemConfig::piranha_p1();
    let w = synth();
    let scale = RunScale::tiny();
    let key = cache_key(&cfg, &w, scale);

    let mut h = Harness::serial();
    h.set_store(Some(store.clone()));
    let original = h.get(&cfg, &w, scale);
    assert_eq!((h.unique_runs(), h.store_hits()), (1, 0));

    // Vandalize the entry three ways; every shape must load as a miss.
    let path = dir.join(format!("{}.json", DiskStore::address(&key)));
    let good = std::fs::read_to_string(&path).unwrap();
    for bad in [
        &good[..good.len() / 2],     // truncated write
        "not json at all",           // garbage
        "{\"v\":999,\"key\":\"x\"}", // wrong schema version
    ] {
        std::fs::write(&path, bad).unwrap();
        assert!(
            store.load(&key).is_none(),
            "a corrupt entry must be a miss, not a panic: {bad:?}"
        );
        // A fresh harness (cold memory cache) recomputes and re-saves.
        let mut h2 = Harness::serial();
        h2.set_store(Some(store.clone()));
        let r = h2.get(&cfg, &w, scale);
        assert_eq!(r.fingerprint(), original.fingerprint());
        assert_eq!((h2.unique_runs(), h2.store_hits()), (1, 0));
        assert_eq!(
            store
                .load(&key)
                .expect("recompute must repair the entry")
                .fingerprint(),
            original.fingerprint()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_sweep_resumes_recomputing_only_unfinished_rows() {
    let dir = tmpdir("resume");
    let w = synth();
    let scale = RunScale::tiny();
    let configs = [
        SystemConfig::piranha_p1(),
        SystemConfig::piranha_pn(2),
        SystemConfig::piranha_pn(3),
        SystemConfig::piranha_pn(4),
    ];

    // "Process one" dies after finishing half the sweep.
    {
        let mut h = Harness::with_threads(2);
        h.set_store(Some(Arc::new(DiskStore::open(&dir).unwrap())));
        let mut partial = RunPlan::new();
        for cfg in &configs[..2] {
            partial.push(RunRequest::new(cfg.clone(), w.clone(), scale));
        }
        h.execute(&partial);
        assert_eq!(h.unique_runs(), 2);
    } // harness (and its in-memory cache) dropped — the "kill"

    // "Process two" runs the whole sweep against the same directory.
    let store = Arc::new(DiskStore::open(&dir).unwrap());
    assert_eq!(store.len(), 2, "two finished rows survived the kill");
    let mut h = Harness::with_threads(2);
    h.set_store(Some(store.clone()));
    let mut full = RunPlan::new();
    for cfg in &configs {
        full.push(RunRequest::new(cfg.clone(), w.clone(), scale));
    }
    h.execute(&full);
    assert_eq!(
        (h.unique_runs(), h.store_hits()),
        (2, 2),
        "resume must recompute exactly the unfinished rows"
    );
    assert_eq!(store.len(), 4, "the finished sweep is fully persisted");

    // And a third run is pure store replay.
    let mut h3 = Harness::with_threads(2);
    h3.set_store(Some(store));
    h3.execute(&full);
    assert_eq!((h3.unique_runs(), h3.store_hits()), (0, 4));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two independent "processes" (separate caches, separate `DiskStore`
/// handles, same directory) racing the same plan: every result agrees,
/// nothing corrupts, and the directory ends up with exactly one entry
/// per tuple. Atomic write-then-rename makes concurrent same-key saves
/// safe; the store contract tolerates both sides computing.
#[test]
fn two_processes_can_share_a_store_directory() {
    let dir = tmpdir("shared");
    let w = synth();
    let scale = RunScale::tiny();
    let configs: Vec<SystemConfig> = (1..=4).map(SystemConfig::piranha_pn).collect();
    let run = |_: usize| {
        let mut h = Harness::with_threads(2);
        h.set_store(Some(Arc::new(DiskStore::open(&dir).unwrap())));
        let mut plan = RunPlan::new();
        for cfg in &configs {
            plan.push(RunRequest::new(cfg.clone(), w.clone(), scale));
        }
        h.execute(&plan);
        configs
            .iter()
            .map(|cfg| h.get(cfg, &w, scale).fingerprint())
            .collect::<Vec<u64>>()
    };
    let (a, b) = std::thread::scope(|s| {
        let ta = s.spawn(|| run(0));
        let tb = s.spawn(|| run(1));
        (ta.join().unwrap(), tb.join().unwrap())
    });
    assert_eq!(a, b, "both sides must observe identical results");

    let store = DiskStore::open(&dir).unwrap();
    assert_eq!(store.len(), configs.len(), "one entry per tuple, no litter");
    for (cfg, fp) in configs.iter().zip(&a) {
        let key = cache_key(cfg, &w, scale);
        assert_eq!(store.load(&key).expect("entry exists").fingerprint(), *fp);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
