//! The probe determinism guard: attaching the observability probe must
//! not change *anything* about the simulated machine — the `RunResult`
//! fingerprint (per-CPU stats, window, memory behaviour) is bit-identical
//! with the probe off, on at metrics level, and on with full tracing.
//! Also checks the acceptance shape of the exports: a two-chip trace
//! carries spans from at least four subsystems, and the stall table's
//! per-core fractions always sum to 1.

use piranha::harness::{run_config, run_config_probed, RunScale};
use piranha::observe;
use piranha::probe::{chrome, ProbeConfig, TraceLevel};
use piranha::workloads::{SynthConfig, Workload};
use piranha::SystemConfig;

fn sharing_workload() -> Workload {
    Workload::Synth(SynthConfig {
        load_frac: 0.25,
        store_frac: 0.2,
        shared_frac: 0.5,
        shared_bytes: 512 << 10,
        private_bytes: 256 << 10,
        ..SynthConfig::light()
    })
}

fn two_chip_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
    cfg.cpu_quantum = 500;
    cfg
}

/// Probe off, probe at metrics-only level, and probe at full span
/// tracing all produce the same simulated results, bit for bit.
#[test]
fn probe_never_perturbs_the_simulation() {
    let w = sharing_workload();
    let scale = RunScale::tiny();
    let bare = run_config(two_chip_cfg(), &w, scale);
    let (metrics_only, _) = run_config_probed(
        two_chip_cfg(),
        &w,
        scale,
        ProbeConfig::with_level(TraceLevel::Off),
    );
    let (traced, _) = run_config_probed(
        two_chip_cfg(),
        &w,
        scale,
        ProbeConfig::with_level(TraceLevel::Verbose),
    );
    assert_eq!(
        bare.fingerprint(),
        metrics_only.fingerprint(),
        "metrics collection changed simulated state"
    );
    assert_eq!(
        bare.fingerprint(),
        traced.fingerprint(),
        "span tracing changed simulated state"
    );
    // The fingerprint covers the full per-CPU stats; spot-check anyway.
    assert_eq!(bare.total_instrs(), traced.total_instrs());
    assert_eq!(bare.window, traced.window);
}

/// A traced two-chip run records spans from the cpu, cache, protocol,
/// and interconnect subsystems (memory shows up too), and the Chrome
/// exporter produces a JSON document holding them.
#[test]
#[cfg_attr(not(feature = "trace"), ignore = "needs the trace feature")]
fn two_chip_trace_covers_four_subsystems() {
    let (_, probe) = run_config_probed(
        two_chip_cfg(),
        &sharing_workload(),
        RunScale::tiny(),
        ProbeConfig::with_level(TraceLevel::Spans),
    );
    let snap = probe.trace_snapshot().expect("probe attached");
    assert!(!snap.is_empty(), "spans were recorded");
    let cats = snap.categories();
    for want in ["cpu", "cache", "protocol", "net"] {
        assert!(cats.contains(&want), "missing {want:?} in {cats:?}");
    }
    assert!(cats.len() >= 4, "≥4 subsystems traced: {cats:?}");
    let json = chrome::chrome_trace_json(&snap);
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\":\"X\""), "complete events present");
    assert!(json.contains("\"ph\":\"M\""), "track metadata present");
}

/// The per-core stall-attribution table partitions every core's wall
/// cycles: fractions sum to 1 within 1e-6, on a run with real stalls.
#[test]
fn stall_table_fractions_sum_to_one() {
    let (r, _) = run_config_probed(
        two_chip_cfg(),
        &sharing_workload(),
        RunScale::tiny(),
        ProbeConfig::with_level(TraceLevel::Off),
    );
    let t = r.stall_table();
    assert_eq!(t.rows.len(), r.cpus.len() + 1, "per-core rows plus 'all'");
    assert!(t.sums_to_one(1e-6), "fractions partition the window");
    let merged = r.merged();
    assert!(
        merged.stall_cycles.iter().sum::<u64>() > 0,
        "the run actually stalled"
    );
}

/// The metrics snapshot attached to a probed `RunResult` carries the
/// expected hierarchy and survives both export formats.
#[test]
fn metrics_snapshot_exports() {
    let (r, _) = run_config_probed(
        two_chip_cfg(),
        &sharing_workload(),
        RunScale::tiny(),
        ProbeConfig::with_level(TraceLevel::Off),
    );
    assert!(
        !r.metrics.is_empty(),
        "sample_metrics populated the snapshot"
    );
    for name in [
        "kernel.events.popped",
        "machine.instrs",
        "cpu.node0.core0.instrs",
        "cpu.node1.core1.tlb_misses",
        "protocol.node0.home_msgs",
        "net.delivered",
    ] {
        assert!(r.metrics.get(name).is_some(), "missing metric {name}");
    }
    let csv = r.metrics.to_csv();
    assert!(csv.starts_with("metric,value\n"));
    assert_eq!(csv.lines().count(), r.metrics.len() + 1);
    let json = r.metrics.to_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
}

/// The figure binaries' exemplar runs the same machinery end to end:
/// files land on disk, the trace parses as JSON-ish, and the summary
/// names the stall table.
#[test]
#[cfg_attr(not(feature = "trace"), ignore = "needs the trace feature")]
fn export_probed_run_writes_files() {
    let dir = std::env::temp_dir().join("piranha-probe-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.csv");
    let cli = observe::ProbeCli {
        trace: Some(trace.clone()),
        metrics: Some(metrics.clone()),
    };
    let summary = observe::export_probed_run(&cli, &sharing_workload(), RunScale::tiny()).unwrap();
    assert!(summary.contains("stall attribution"));
    let t = std::fs::read_to_string(&trace).unwrap();
    assert!(t.contains("\"traceEvents\"") && t.contains("\"ph\":\"X\""));
    let m = std::fs::read_to_string(&metrics).unwrap();
    assert!(m.starts_with("metric,value\n") && m.lines().count() > 10);
    std::fs::remove_file(trace).ok();
    std::fs::remove_file(metrics).ok();
}
