//! CPU hot-stop/start through the system controller, exercised the way
//! an operator would: stop a core mid-run, let the rest of the chip keep
//! executing, restart it, and run the bounded workload to completion.
//!
//! The contracts under test:
//!
//! 1. a stop/start cycle loses no work — the bounded OLTP run commits
//!    exactly as many transactions as an undisturbed run;
//! 2. the whole sequence is deterministic — repeating the identical
//!    stop/start schedule yields a bit-identical fingerprint;
//! 3. the stopped core really is stopped (no instructions retire while
//!    its enable bit is down).

use piranha::experiments::oltp_bounded;
use piranha::{Machine, SystemConfig};

const TXNS_PER_CPU: u64 = 3;

fn machine() -> Machine {
    Machine::new(SystemConfig::piranha_pn(4), &oltp_bounded(TXNS_PER_CPU))
}

/// Run to completion with CPU 1 of node 0 stopped between two
/// instruction milestones, returning the result.
fn run_with_hotplug(stop_at: u64, restart_after: u64) -> piranha::RunResult {
    let mut m = machine();
    m.run_until_total(stop_at);
    m.stop_cpu(0, 1);
    let frozen = m.cpu_stats()[1].instrs;
    m.run_until_total(m.total_instrs() + restart_after);
    assert_eq!(
        m.cpu_stats()[1].instrs,
        frozen,
        "a stopped CPU must not retire instructions"
    );
    m.start_cpu(0, 1);
    m.run_to_completion()
}

#[test]
fn hot_stop_start_commits_the_same_work() {
    let mut base = machine();
    let undisturbed = base.run_to_completion();
    let base_committed = undisturbed
        .committed_txns
        .expect("bounded OLTP reports committed work");
    assert_eq!(
        base_committed,
        TXNS_PER_CPU * 4,
        "every stream commits its full budget"
    );

    let hot = run_with_hotplug(5_000, 8_000);
    assert_eq!(
        hot.committed_txns,
        Some(base_committed),
        "stopping and restarting a core must not lose transactions"
    );
}

#[test]
fn hot_stop_start_is_deterministic() {
    let a = run_with_hotplug(5_000, 8_000);
    let b = run_with_hotplug(5_000, 8_000);
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "identical stop/start schedules must replay bit-identically"
    );
    // A different schedule is a genuinely different simulation (the
    // fingerprint covers committed work and timing, which shift).
    let c = run_with_hotplug(9_000, 2_000);
    assert_eq!(c.committed_txns, a.committed_txns, "still loses no work");
}

#[test]
fn controller_counts_the_control_traffic() {
    let mut m = machine();
    m.run_until_total(4_000);
    let before = m.system_controller(0).packets_handled();
    m.stop_cpu(0, 1);
    m.start_cpu(0, 1);
    assert_eq!(
        m.system_controller(0).packets_handled(),
        before + 2,
        "stop + start are two control packets through the SC"
    );
    let r = m.run_to_completion();
    assert_eq!(r.committed_txns, Some(TXNS_PER_CPU * 4));
}
