//! Property-based tests (proptest) on core invariants: directory
//! encodings, the DC-balanced link code, cache state machines, CMI
//! planning, and randomized whole-machine coherence.

use proptest::prelude::*;

use piranha::cache::{L1Cache, L1Config, Mesi, StoreOutcome};
use piranha::mem::{DirEntry, NodeSet};
use piranha::net::{decode22, encode22};
use piranha::protocol::msg::plan_cmi_routes;
use piranha::types::{LineAddr, NodeId};
use piranha::workloads::{SynthConfig, Workload};
use piranha::{Machine, SystemConfig};

proptest! {
    /// Directory encode/decode: exact for ≤4 sharers and exclusive
    /// entries; a superset (never missing a sharer) beyond that.
    #[test]
    fn directory_round_trip(sharers in proptest::collection::btree_set(0u16..1024, 0..12)) {
        let set: NodeSet = sharers.iter().map(|&n| NodeId(n)).collect();
        let e = DirEntry::Shared(set.clone());
        let bits = e.encode();
        prop_assert!(bits < (1u64 << 44), "fits the spare ECC bits");
        let d = DirEntry::decode(bits, 1024);
        match d {
            DirEntry::Uncached => prop_assert!(set.is_empty()),
            DirEntry::Shared(ds) => {
                prop_assert!(ds.is_superset(&set), "never lose a sharer");
                if set.len() <= 4 {
                    prop_assert_eq!(ds, set, "pointer representation is exact");
                }
            }
            DirEntry::Exclusive(_) => prop_assert!(false, "shared never decodes exclusive"),
        }
    }

    /// Exclusive entries round-trip exactly for every node id.
    #[test]
    fn directory_exclusive_round_trip(node in 0u16..1024) {
        let e = DirEntry::Exclusive(NodeId(node));
        prop_assert_eq!(DirEntry::decode(e.encode(), 1024), e);
    }

    /// The 19-in-22 link code: every payload encodes to a word with
    /// exactly 11 wires high, decodes back, and complementing the word
    /// flips only the 19th (inversion) bit.
    #[test]
    fn dc_balanced_code(payload in 0u32..(1 << 19)) {
        let w = encode22(payload).unwrap();
        prop_assert_eq!(w.count_ones(), 11, "DC balance");
        prop_assert_eq!(decode22(w).unwrap(), payload);
        let complement = !w & ((1 << 22) - 1);
        prop_assert_eq!(complement.count_ones(), 11);
        prop_assert_eq!(decode22(complement).unwrap(), payload ^ (1 << 18));
    }

    /// CMI planning: every target visited exactly once, within the route
    /// budget, with balanced route lengths.
    #[test]
    fn cmi_routes_partition_targets(
        targets in proptest::collection::btree_set(0u16..256, 0..40),
        budget in 1usize..8,
    ) {
        let t: Vec<NodeId> = targets.iter().map(|&n| NodeId(n)).collect();
        let routes = plan_cmi_routes(&t, budget);
        prop_assert!(routes.len() <= budget);
        let mut seen: Vec<NodeId> = routes.iter().flatten().copied().collect();
        seen.sort();
        prop_assert_eq!(seen, t, "exact partition");
        if !routes.is_empty() {
            let min = routes.iter().map(Vec::len).min().unwrap();
            let max = routes.iter().map(Vec::len).max().unwrap();
            prop_assert!(max - min <= 1, "balanced routes");
        }
    }

    /// L1 cache model versus a reference map: state/version agree after
    /// arbitrary operation sequences, and the cache never exceeds its
    /// capacity.
    #[test]
    fn l1_matches_reference_model(ops in proptest::collection::vec((0u8..5, 0u64..32), 1..300)) {
        let cfg = L1Config { size_bytes: 8 * 64, ways: 2 }; // 4 sets x 2 ways
        let mut l1 = L1Cache::new(cfg);
        let mut reference: std::collections::HashMap<u64, (Mesi, u64)> =
            std::collections::HashMap::new();
        let mut version = 0u64;
        for (op, line_raw) in ops {
            let line = LineAddr(line_raw);
            match op {
                0 => {
                    // Read: hit iff the reference says present.
                    prop_assert_eq!(l1.access_read(line), reference.contains_key(&line_raw));
                }
                1 => {
                    // Fill (only if absent).
                    if !reference.contains_key(&line_raw) {
                        version += 1;
                        if let Some(v) = l1.fill(line, Mesi::Exclusive, version) {
                            let gone = reference.remove(&v.line.0);
                            prop_assert!(gone.is_some(), "victim was resident");
                        }
                        reference.insert(line_raw, (Mesi::Exclusive, version));
                    }
                }
                2 => {
                    // Store.
                    version += 1;
                    let out = l1.store(line, version);
                    match reference.get_mut(&line_raw) {
                        Some((st, v)) if st.writable() => {
                            prop_assert_eq!(out, StoreOutcome::Hit);
                            *st = Mesi::Modified;
                            *v = version;
                        }
                        Some(_) => prop_assert_eq!(out, StoreOutcome::NeedUpgrade),
                        None => prop_assert_eq!(out, StoreOutcome::Miss),
                    }
                }
                3 => {
                    // Invalidate.
                    let got = l1.invalidate(line);
                    prop_assert_eq!(got.is_some(), reference.remove(&line_raw).is_some());
                }
                _ => {
                    // Downgrade.
                    let got = l1.downgrade(line);
                    if let Some((st, v)) = reference.get_mut(&line_raw) {
                        prop_assert_eq!(got, Some((st.dirty(), *v)));
                        *st = Mesi::Shared;
                    } else {
                        prop_assert_eq!(got, None);
                    }
                }
            }
            // State agreement on every tracked line.
            for (&lr, &(st, v)) in &reference {
                prop_assert_eq!(l1.state(LineAddr(lr)), st);
                prop_assert_eq!(l1.version(LineAddr(lr)), Some(v));
            }
            prop_assert!(l1.len() <= 8, "capacity bound");
            prop_assert_eq!(l1.len(), reference.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Randomized whole-machine runs: any synthetic workload mix on a
    /// 2-chip 2-CPU system keeps every coherence invariant.
    #[test]
    fn random_workloads_stay_coherent(
        seed in 0u64..1_000,
        store_frac in 0.05f64..0.4,
        shared_frac in 0.0f64..0.9,
        shared_kb in 4u64..512,
    ) {
        let w = Workload::Synth(SynthConfig {
            load_frac: 0.25,
            store_frac,
            shared_frac,
            shared_bytes: shared_kb << 10,
            ..SynthConfig::light()
        });
        let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
        cfg.seed = seed;
        cfg.cpu_quantum = 500;
        let mut m = Machine::new(cfg, &w);
        m.run_until_total(60_000);
        m.check_coherence();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The L2 bank state machine under random event sequences keeps its
    /// duplicate-tag directory exactly consistent with the real L1s and
    /// never violates MESI exclusivity on-chip.
    #[test]
    fn l2_bank_random_events_keep_dup_tags_exact(
        ops in proptest::collection::vec(
            (0u8..4, 0u8..8, 0u64..24, proptest::bool::ANY),
            1..200,
        ),
    ) {
        use piranha::cache::{BankEvent, L1Set, L2Bank, L2BankConfig, L1Config, Slot};
        use piranha::types::{CacheKind, CpuId, RemoteSummary, ReqType};

        let mut bank = L2Bank::new(L2BankConfig { size_bytes: 16 * 64, ways: 2 }, 0, 1);
        let mut l1s = L1Set::new(8, L1Config { size_bytes: 4 * 64, ways: 2 });
        let mut version = 100u64;

        for (op, cpu, line_raw, flag) in ops {
            let line = LineAddr(line_raw);
            let slot = Slot::new(CpuId(cpu), CacheKind::Data);
            match op {
                0 => {
                    // A read or write miss, if this L1 does not already
                    // hold the line and it is not pending.
                    if l1s.get(slot).state(line).readable() || bank.is_pending(line) {
                        continue;
                    }
                    version += 1;
                    let (req, sv) = if flag {
                        (ReqType::ReadEx, Some(version))
                    } else {
                        (ReqType::Read, None)
                    };
                    bank.handle(
                        BankEvent::Miss { slot, req, line, home_local: true, store_version: sv },
                        &mut l1s,
                    );
                }
                1 => {
                    // Memory answers an outstanding transaction.
                    if bank.is_pending(line) {
                        bank.handle(
                            BankEvent::MemData { line, version: 1, remote: RemoteSummary::None },
                            &mut l1s,
                        );
                    }
                }
                2 => {
                    // An inter-node invalidation at any time.
                    bank.handle(BankEvent::InvalAll { line }, &mut l1s);
                }
                _ => {
                    // A home-engine export (shared or exclusive).
                    if !bank.is_pending(line) {
                        bank.handle(BankEvent::Export { line, excl: flag }, &mut l1s);
                        if bank.is_pending(line) {
                            bank.handle(
                                BankEvent::MemData { line, version: 1, remote: RemoteSummary::None },
                                &mut l1s,
                            );
                        }
                    }
                }
            }

            // Invariants after every event:
            // (1) every L1-resident line is tracked with the right state;
            for (s, l1) in l1s.iter() {
                for (l, st, _v) in l1.resident() {
                    let e = bank.dup().get(l).expect("resident line tracked by dup tags");
                    prop_assert_eq!(e.l1_state(s), st, "dup state mismatch at {}", s);
                }
            }
            // (2) dup tags never claim a copy the L1 does not have;
            for (l, e) in bank.dup().iter() {
                for h in e.holders() {
                    prop_assert!(
                        l1s.get(h).state(l).readable(),
                        "dup tags claim {} holds {} but it does not", h, l
                    );
                }
                // (3) a writable holder excludes all other copies.
                if let Some(x) = e.exclusive_holder() {
                    prop_assert_eq!(e.holder_count(), 1, "writable copy must be sole");
                    prop_assert!(!e.in_l2, "writable L1 copy excludes the L2 copy");
                    let _ = x;
                }
                // (4) the L2 array agrees with the dup tags.
                prop_assert_eq!(bank.in_array(l), e.in_l2, "array/dup disagreement for {}", l);
            }
        }
    }
}
