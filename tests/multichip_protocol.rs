//! Multi-chip (NUMA) integration tests: the inter-node directory
//! protocol of paper §2.5.3 exercised end-to-end — 3-hop transactions,
//! write-back races, cruise-missile invalidates, and glueless scaling.

use piranha::workloads::{OltpConfig, SynthConfig, Workload};
use piranha::{Machine, SystemConfig};

fn sharing_workload() -> Workload {
    Workload::Synth(SynthConfig {
        load_frac: 0.25,
        store_frac: 0.2,
        shared_frac: 0.5,
        shared_bytes: 512 << 10,
        private_bytes: 256 << 10,
        ..SynthConfig::light()
    })
}

fn run_chips(chips: usize, instrs: u64) -> Machine {
    let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(chips);
    cfg.cpu_quantum = 500;
    let mut m = Machine::new(cfg, &sharing_workload());
    m.run_until_total(instrs);
    m
}

/// Two chips sharing hot data: remote fills of both kinds occur, the
/// coherence invariants hold across the system, and everyone advances.
#[test]
fn two_chips_share_coherently() {
    let m = run_chips(2, 200_000);
    m.check_coherence();
    let s = m.cpu_stats();
    let remote_mem: u64 = s.iter().map(|c| c.fills[3]).sum();
    let remote_dirty: u64 = s.iter().map(|c| c.fills[4]).sum();
    assert!(remote_mem > 0, "reads of remote-homed clean lines occurred");
    assert!(remote_dirty > 0, "3-hop dirty transfers occurred");
    for c in &s {
        assert!(c.instrs > 10_000, "every CPU progresses");
    }
}

/// Four chips (the paper's fully-connected glueless maximum with a
/// spare channel): the protocol engines stay within their 16-entry TSRF
/// and the network delivers everything it accepted.
#[test]
fn four_chip_scaling_respects_tsrf_bounds() {
    let m = run_chips(4, 400_000);
    m.check_coherence();
    let (home_msgs, remote_msgs, home_hw, remote_hw) = m.engine_stats();
    assert!(home_msgs > 1_000, "home engines did real work: {home_msgs}");
    assert!(
        remote_msgs > 1_000,
        "remote engines did real work: {remote_msgs}"
    );
    assert!(home_hw <= 16 && remote_hw <= 16, "TSRF bound respected");
    assert!(m.network().delivered() > 1_000);
}

/// Write-back races and recalls: a migratory pattern (every CPU updates
/// the same hot lines in turn) forces exclusive ownership to bounce
/// between chips through forwards and write-backs.
#[test]
fn migratory_ownership_bounces_between_chips() {
    let w = Workload::Synth(SynthConfig {
        load_frac: 0.2,
        store_frac: 0.3,
        shared_frac: 0.9,
        shared_bytes: 8 << 10, // 128 lines, all hot
        ..SynthConfig::light()
    });
    let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
    cfg.cpu_quantum = 200;
    let mut m = Machine::new(cfg, &w);
    m.run_until_total(150_000);
    m.check_coherence();
    let dirty_3hop: u64 = m.cpu_stats().iter().map(|c| c.fills[4]).sum();
    assert!(
        dirty_3hop > 50,
        "migratory data moves by 3-hop forwards: {dirty_3hop}"
    );
}

/// The CMI route budget bounds invalidation fan-out without losing
/// correctness: a run with 1 route (worst-case chaining) matches the
/// coherence invariants of a run with unlimited routes.
#[test]
fn cmi_route_budget_is_correctness_neutral() {
    for routes in [1usize, 4, 64] {
        let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(4);
        cfg.cmi_routes = routes;
        cfg.cpu_quantum = 500;
        let mut m = Machine::new(cfg, &sharing_workload());
        m.run_until_total(150_000);
        m.check_coherence();
    }
}

/// OLTP across four chips completes with remote communication and a
/// better-than-OOO scaling trend (the Figure 7 claim, smoke-sized).
#[test]
fn oltp_scales_across_chips() {
    let w = Workload::Oltp(OltpConfig::paper_default());
    let mut one = Machine::new(SystemConfig::piranha_pn(2), &w);
    let r1 = one.run(30_000, 60_000);
    let mut four = Machine::new(SystemConfig::piranha_pn(2).scaled_to_chips(4), &w);
    let r4 = four.run(30_000, 60_000);
    let s = r4.speedup_over(&r1);
    assert!(s > 1.8, "4 chips should clearly beat 1: {s}");
    four.check_coherence();
}

/// Remote traffic is deterministic too.
#[test]
fn multichip_determinism() {
    let run = || {
        let m = run_chips(2, 100_000);
        let s = m.cpu_stats();
        (
            s.iter().map(|c| c.instrs).sum::<u64>(),
            s.iter().map(|c| c.fills[3] + c.fills[4]).sum::<u64>(),
            m.network().delivered(),
            m.now().as_ps(),
        )
    };
    assert_eq!(run(), run());
}
