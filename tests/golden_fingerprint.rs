//! Golden-fingerprint guard: the event-ordering contract of the
//! simulator core.
//!
//! Every fig5–fig8 configuration at quick scale, plus the `fig_faults`
//! headline schedule, must produce a [`RunResult::fingerprint()`] that
//! is bit-identical to the checked-in `tests/golden_fingerprints.tsv`.
//! Any change to event delivery order — a reordered `schedule()` call, a
//! different tie-break in the event queue, a perturbed PRNG consult —
//! shows up here as a fingerprint diff, so refactors of the dispatch
//! path (like the component/port decomposition) are provably
//! behavior-preserving.
//!
//! To regenerate after an *intentional* semantic change:
//!
//! ```text
//! cargo test --release --test golden_fingerprint -- --ignored bless
//! ```
//!
//! and commit the updated `.tsv` files with an explanation of why the
//! ordering legitimately changed.

use piranha::experiments::{
    fig5_fingerprints, golden_fingerprints, golden_plan, render_fingerprints, RunScale,
};

const GOLDEN: &str = include_str!("golden_fingerprints.tsv");
const GOLDEN_FIG5: &str = include_str!("golden_fig5_quick.tsv");

fn golden_dir() -> std::path::PathBuf {
    // Compiled as a `[[test]]` of crates/core, so the manifest dir is
    // two levels below the repo root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests")
}

#[test]
fn golden_labels_are_unique() {
    let plan = golden_plan(RunScale::quick());
    let labels: std::collections::HashSet<String> = plan
        .requests()
        .iter()
        .map(piranha::experiments::golden_label)
        .collect();
    assert_eq!(
        labels.len(),
        plan.len(),
        "every golden run must have a distinct label"
    );
}

#[test]
fn golden_fingerprints_match_checked_in_values() {
    let got = render_fingerprints(&golden_fingerprints(RunScale::quick()));
    assert!(
        !GOLDEN.trim().is_empty(),
        "golden file missing — run the ignored `bless` test to create it"
    );
    if got != GOLDEN {
        let diff: Vec<String> = got
            .lines()
            .zip(GOLDEN.lines().chain(std::iter::repeat("<missing>")))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| format!("  got:    {a}\n  golden: {b}"))
            .collect();
        panic!(
            "event ordering changed — {} of {} fingerprints differ:\n{}\n\
             If intentional, re-bless with:\n  cargo test --release --test \
             golden_fingerprint -- --ignored bless",
            diff.len(),
            got.lines().count(),
            diff.join("\n")
        );
    }
}

#[test]
fn fig5_subset_matches_checked_in_values() {
    let got = render_fingerprints(&fig5_fingerprints(RunScale::quick()));
    assert_eq!(
        got, GOLDEN_FIG5,
        "fig5 fingerprint subset drifted from tests/golden_fig5_quick.tsv \
         (this is the set the CI smoke job diffs via `fig5 --quick --fingerprints`)"
    );
}

#[test]
fn fig5_subset_is_a_prefix_of_the_golden_set() {
    // The CI smoke only covers fig5; make sure those lines really are
    // the corresponding lines of the full golden file, so the two files
    // can never disagree about the same run.
    for line in GOLDEN_FIG5.lines() {
        assert!(
            GOLDEN.lines().any(|g| g == line),
            "fig5 golden line not present in the full golden set: {line}"
        );
    }
}

/// Every multi-chip golden row must reproduce its serially-blessed
/// fingerprint under the conservative parallel engine at 2 and 4 lane
/// workers. The quantum engine is canonical for multi-chip machines at
/// *any* worker count, so this holds by construction — the test guards
/// the construction (barrier merge order, outbox sequencing, per-lane
/// version striding) against regressions.
///
/// Skipped on single-core machines, where oversubscribed lane threads
/// would only slow CI down without changing coverage (the tiny-scale
/// proptest below still runs); set `PIRANHA_GOLDEN_PARALLEL=1` to force.
#[test]
fn golden_multichip_rows_match_under_parallel_workers() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 2 && std::env::var_os("PIRANHA_GOLDEN_PARALLEL").is_none() {
        eprintln!("skipping parallel golden check: {cores} core(s); set PIRANHA_GOLDEN_PARALLEL=1 to force");
        return;
    }
    let golden: std::collections::HashMap<&str, &str> =
        GOLDEN.lines().filter_map(|l| l.split_once('\t')).collect();
    let plan = golden_plan(RunScale::quick());
    let mut checked = 0;
    for req in plan.requests() {
        if req.cfg.nodes + req.cfg.io_nodes < 2 {
            continue;
        }
        let label = piranha::experiments::golden_label(req);
        let want = golden
            .get(label.as_str())
            .unwrap_or_else(|| panic!("golden file has no row for {label}"));
        for workers in [2usize, 4] {
            let r = piranha::harness::run_config_parallel(
                req.cfg.clone(),
                &req.workload,
                req.scale,
                workers,
            );
            assert_eq!(
                &format!("{:016x}", r.fingerprint()),
                want,
                "{label} diverged from its serially-blessed fingerprint \
                 at {workers} lane workers"
            );
        }
        checked += 1;
    }
    assert!(
        checked >= 4,
        "golden plan should contain multi-chip rows (found {checked})"
    );
}

mod parallel_props {
    use super::*;
    use piranha::experiments::{dss, oltp};
    use piranha::harness::run_config_parallel;
    use piranha::SystemConfig;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

        /// Serial == parallel for *random* multi-chip configurations,
        /// not just the blessed figure configs: chip count, CPUs per
        /// chip, seed, workload, and worker count all vary. Tiny scale
        /// keeps each case cheap enough to run everywhere (including
        /// single-core CI).
        #[test]
        fn random_multichip_configs_are_parallel_deterministic(
            chips in 2usize..5,
            cpus in 1usize..5,
            seed in 0u64..1_000_000,
            workers in 2usize..5,
            use_dss in proptest::bool::ANY,
        ) {
            let mut cfg = SystemConfig::piranha_pn(cpus).scaled_to_chips(chips);
            cfg.seed = seed;
            let w = if use_dss { dss() } else { oltp() };
            let scale = RunScale::tiny();
            let serial = run_config_parallel(cfg.clone(), &w, scale, 1);
            let parallel = run_config_parallel(cfg.clone(), &w, scale, workers);
            prop_assert_eq!(
                serial.fingerprint(),
                parallel.fingerprint(),
                "{} chips={} cpus={} seed={} workers={} dss={}",
                cfg.name, chips, cpus, seed, workers, use_dss
            );
        }
    }
}

/// Regenerates both golden files. Ignored by default; run explicitly
/// when an intentional change to event ordering is being made.
#[test]
#[ignore = "regenerates the golden files; run explicitly to bless"]
fn bless() {
    let dir = golden_dir();
    let all = render_fingerprints(&golden_fingerprints(RunScale::quick()));
    std::fs::write(dir.join("golden_fingerprints.tsv"), &all).unwrap();
    let fig5 = render_fingerprints(&fig5_fingerprints(RunScale::quick()));
    std::fs::write(dir.join("golden_fig5_quick.tsv"), &fig5).unwrap();
    println!("blessed {} golden fingerprints", all.lines().count());
}
