//! Cache-key stability guard: the content address of the persistent
//! result store.
//!
//! `piranha::harness::cache_key` turns a `(config, workload, scale)`
//! tuple into the string the in-memory cache *and* the on-disk
//! [`piranha::serve::DiskStore`] key by. Since the key is a `Debug`
//! rendering, any rename or reorder of a config/workload field silently
//! changes every address — which is *correct* (a changed config must
//! not alias an old result) but must always be a **visible, deliberate**
//! event: it orphans every stored entry, so sweeps resume from scratch.
//! This test pins the store address of every golden-plan tuple (plus
//! the other `RunScale` presets) to `tests/golden_cache_keys.tsv`.
//!
//! To regenerate after an intentional config/workload schema change:
//!
//! ```text
//! cargo test --release --test cache_key_stability -- --ignored bless
//! ```
//!
//! and commit the updated `.tsv` alongside the schema change.

use piranha::experiments::{golden_label, golden_plan, RunScale};
use piranha::harness::cache_key;
use piranha::serve::DiskStore;

const GOLDEN: &str = include_str!("golden_cache_keys.tsv");

/// The pinned grid: every golden-plan tuple at quick scale, plus the
/// P8/OLTP anchor at each other scale preset (scale is part of the
/// key, so a changed preset must orphan its entries too).
fn grid() -> Vec<(String, String)> {
    let mut rows = Vec::new();
    for req in golden_plan(RunScale::quick()).requests() {
        rows.push((
            golden_label(req),
            cache_key(&req.cfg, &req.workload, req.scale),
        ));
    }
    let p8 = piranha::SystemConfig::piranha_p8();
    let w = piranha::experiments::oltp();
    for (name, scale) in [
        ("tiny", RunScale::tiny()),
        ("full", RunScale::full()),
        ("completion", RunScale::completion()),
    ] {
        rows.push((format!("P8|oltp|scale-{name}"), cache_key(&p8, &w, scale)));
    }
    rows
}

fn render(rows: &[(String, String)]) -> String {
    rows.iter()
        .map(|(label, key)| format!("{label}\t{}\n", DiskStore::address(key)))
        .collect()
}

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests")
}

#[test]
fn cache_keys_are_deterministic_and_distinct() {
    let rows = grid();
    let again = grid();
    assert_eq!(rows, again, "cache_key must be a pure function");
    let distinct: std::collections::HashSet<&String> = rows.iter().map(|(_, k)| k).collect();
    assert_eq!(distinct.len(), rows.len(), "grid tuples must not alias");
    let addrs: std::collections::HashSet<String> =
        rows.iter().map(|(_, k)| DiskStore::address(k)).collect();
    assert_eq!(addrs.len(), rows.len(), "store addresses must not collide");
}

#[test]
fn store_addresses_match_checked_in_values() {
    assert!(
        !GOLDEN.trim().is_empty(),
        "golden file missing — run the ignored `bless` test to create it"
    );
    let got = render(&grid());
    if got != GOLDEN {
        let diff: Vec<String> = got
            .lines()
            .zip(GOLDEN.lines().chain(std::iter::repeat("<missing>")))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| format!("  got:    {a}\n  golden: {b}"))
            .collect();
        panic!(
            "cache keys changed — {} of {} addresses differ (stored results \
             will be orphaned):\n{}\n\
             If the config/workload schema change is intentional, re-bless \
             with:\n  cargo test --release --test cache_key_stability -- \
             --ignored bless",
            diff.len(),
            got.lines().count(),
            diff.join("\n")
        );
    }
}

/// The scale presets must disagree — a quick result served to a full
/// sweep would be a silent correctness bug, not a cache hit.
#[test]
fn scale_is_part_of_the_key() {
    let p8 = piranha::SystemConfig::piranha_p8();
    let w = piranha::experiments::oltp();
    let quick = cache_key(&p8, &w, RunScale::quick());
    let full = cache_key(&p8, &w, RunScale::full());
    assert_ne!(quick, full);
    assert_ne!(DiskStore::address(&quick), DiskStore::address(&full));
}

/// Regenerates the golden address table. Ignored by default; run
/// explicitly when a schema change legitimately re-keys the store.
#[test]
#[ignore = "regenerates the golden cache-key table; run explicitly to bless"]
fn bless() {
    let out = render(&grid());
    std::fs::write(golden_dir().join("golden_cache_keys.tsv"), &out).unwrap();
    println!("blessed {} cache-key addresses", out.lines().count());
}
