//! End-to-end exercise of the experiment service over real TCP: submit
//! a plan, stream progress, verify provenance transitions
//! (computed → memory → store across server generations), deduplicate
//! duplicate specs, and drain cleanly on shutdown.

use std::sync::Arc;
use std::time::Duration;

use piranha::harness::ResultStore;
use piranha::serve::{Client, DiskStore, RunSpec, Server, ServerConfig};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("piranha-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawn a server on an ephemeral port; returns its address and the
/// thread to join after `shutdown`.
fn spawn_server(store: Option<Arc<dyn ResultStore>>) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", store, ServerConfig { threads: 2 })
        .expect("bind an ephemeral port");
    let addr = server.local_addr().expect("bound socket").to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn plan() -> Vec<RunSpec> {
    vec![
        RunSpec::new("p1", "oltp", "tiny"),
        RunSpec::new("p2", "oltp", "tiny"),
        RunSpec::new("p4", "oltp", "tiny").with_chips(2),
    ]
}

#[test]
fn submit_watch_and_resubmit_over_tcp() {
    let (addr, handle) = spawn_server(None);
    let mut client = Client::connect(&addr).expect("connect");
    assert!(client.ping().expect("ping") >= 1, "worker pool is alive");

    // Cold submission: nothing cached, every entry computes.
    let ticket = client.submit(&plan()).expect("submit");
    assert_eq!((ticket.total, ticket.cached), (3, 0));
    let mut events = Vec::new();
    client
        .watch(ticket.job, |ev| {
            if let Some(kind) = ev.get("event").and_then(|v| v.as_str()) {
                events.push(kind.to_string());
            }
        })
        .expect("watch");
    assert_eq!(events.last().map(String::as_str), Some("job_done"));
    assert_eq!(
        events.iter().filter(|e| *e == "done").count(),
        3,
        "every entry must report done: {events:?}"
    );
    let status = client.status(ticket.job).expect("status");
    assert!(status.is_done());
    assert_eq!(status.done, 3);
    for row in &status.rows {
        assert_eq!(row.provenance.as_deref(), Some("computed"));
        assert!(row.fingerprint.is_some(), "done rows carry a fingerprint");
    }

    // Identical plan again: acknowledged fully cached, done at submit,
    // and every row now answered from memory.
    let again = client.submit(&plan()).expect("resubmit");
    assert_eq!((again.total, again.cached), (3, 3));
    let warm = client.status(again.job).expect("status");
    assert!(warm.is_done(), "a fully cached job completes at submit");
    for (row, cold_row) in warm.rows.iter().zip(&status.rows) {
        assert_eq!(row.provenance.as_deref(), Some("memory"));
        assert_eq!(
            row.fingerprint, cold_row.fingerprint,
            "cached answers must be bit-identical"
        );
    }

    // A plan with internal duplicates resolves each tuple once.
    let mut dup = plan();
    dup.extend(plan());
    let t = client.submit(&dup).expect("submit duplicates");
    assert_eq!((t.total, t.cached), (6, 6), "all dupes hit the cache");

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread drains");
}

#[test]
fn a_restarted_server_serves_from_its_store() {
    let dir = tmpdir("restart");

    // Generation one computes and persists.
    let store: Arc<dyn ResultStore> = Arc::new(DiskStore::open(&dir).unwrap());
    let (addr, handle) = spawn_server(Some(store));
    let mut client = Client::connect(&addr).expect("connect");
    let ticket = client.submit(&plan()).expect("submit");
    let done = client
        .wait(ticket.job, Duration::from_millis(5))
        .expect("wait");
    let cold_fps: Vec<Option<String>> = done.rows.iter().map(|r| r.fingerprint.clone()).collect();
    client.shutdown().expect("shutdown");
    handle.join().expect("generation one drains");
    assert_eq!(DiskStore::open(&dir).unwrap().len(), 3);

    // Generation two (fresh memory cache, same directory) serves every
    // entry from the store without recomputing.
    let store: Arc<dyn ResultStore> = Arc::new(DiskStore::open(&dir).unwrap());
    let (addr, handle) = spawn_server(Some(store));
    let mut client = Client::connect(&addr).expect("connect");
    let ticket = client.submit(&plan()).expect("submit");
    let done = client
        .wait(ticket.job, Duration::from_millis(5))
        .expect("wait");
    for (row, cold) in done.rows.iter().zip(&cold_fps) {
        assert_eq!(row.provenance.as_deref(), Some("store"));
        assert_eq!(&row.fingerprint, cold, "store replay is bit-identical");
    }
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.get("executed").and_then(|v| v.as_u64()),
        Some(0),
        "generation two must not simulate anything: {stats}"
    );
    assert_eq!(stats.get("store_hits").and_then(|v| v.as_u64()), Some(3));
    client.shutdown().expect("shutdown");
    handle.join().expect("generation two drains");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_submissions_are_rejected_not_fatal() {
    let (addr, handle) = spawn_server(None);
    let mut client = Client::connect(&addr).expect("connect");

    let err = client
        .submit(&[RunSpec::new("p9000", "oltp", "tiny")])
        .expect_err("unknown preset must be rejected");
    assert!(err.contains("p9000"), "error names the offender: {err}");
    let err = client
        .submit(&[RunSpec::new("p1", "oltp", "galactic")])
        .expect_err("unknown scale must be rejected");
    assert!(err.contains("galactic"), "error names the offender: {err}");
    client
        .submit(&[])
        .expect_err("an empty plan must be rejected");
    let err = client.status(999).expect_err("unknown job id");
    assert!(err.contains("999"), "error names the job: {err}");

    // The connection (and the server) survives every rejection.
    assert!(client.ping().is_ok());
    let ticket = client
        .submit(&[RunSpec::new("p1", "synth", "tiny")])
        .expect("a good plan still works");
    let done = client
        .wait(ticket.job, Duration::from_millis(5))
        .expect("wait");
    assert!(done.is_done());
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread drains");
}
