//! Property tests of the recovery guarantee (paper §2.7): under *any*
//! random fault schedule at recoverable rates, a bounded OLTP or DSS
//! run driven to completion commits exactly the same work as the
//! fault-free run of the same machine — faults may only cost cycles.

use proptest::prelude::*;

use piranha::experiments;
use piranha::harness::{run_config, RunScale};
use piranha::workloads::{DssConfig, Workload};
use piranha::{FaultConfig, SystemConfig};

fn two_chip_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::piranha_pn(2).scaled_to_chips(2);
    cfg.cpu_quantum = 500;
    cfg
}

fn dss_bounded(lines: u64) -> Workload {
    Workload::Dss(DssConfig {
        line_limit: lines,
        ..DssConfig::paper_default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Random recoverable schedules never lose OLTP transactions.
    #[test]
    fn random_fault_schedules_preserve_oltp_work(
        seed in 0u64..10_000,
        rate in 1e-4f64..3e-3,
    ) {
        let w = experiments::oltp_bounded(6);
        let scale = RunScale::completion();
        let base = run_config(two_chip_cfg(), &w, scale);
        let mut cfg = two_chip_cfg();
        cfg.faults = FaultConfig::seeded(seed, rate);
        let faulted = run_config(cfg, &w, scale);
        prop_assert!(faulted.availability.is_consistent());
        prop_assert_eq!(
            faulted.committed_txns, base.committed_txns,
            "seed {} rate {} lost work", seed, rate
        );
        prop_assert_eq!(base.committed_txns, Some(6 * 4), "every stream finished");
    }

    /// The same guarantee holds for the scan-bound DSS workload.
    #[test]
    fn random_fault_schedules_preserve_dss_work(
        seed in 0u64..10_000,
        rate in 1e-4f64..3e-3,
    ) {
        let w = dss_bounded(512);
        let scale = RunScale::completion();
        let base = run_config(two_chip_cfg(), &w, scale);
        let mut cfg = two_chip_cfg();
        cfg.faults = FaultConfig::seeded(seed, rate);
        let faulted = run_config(cfg, &w, scale);
        prop_assert!(faulted.availability.is_consistent());
        prop_assert_eq!(
            faulted.committed_txns, base.committed_txns,
            "seed {} rate {} lost scan lines", seed, rate
        );
    }
}
