//! Integration tests for the adaptive-lookahead parallel engine: the
//! per-pair lookahead matrix wired from the fabric topology, the train
//! protocol's round/window accounting, and the parsim metrics surfaced
//! through the probe and the machine report.
//!
//! Bit-identity across worker counts is separately pinned by the golden
//! fingerprints (`golden_fingerprint.rs`); these tests cover the new
//! engine *structure* — counters that must be a function of the
//! simulation, never of the thread schedule.

use piranha::workloads::{OltpConfig, Workload};
use piranha::{Machine, ParsimStats, Probe, ProbeConfig, SystemConfig};

fn multichip(chips: usize) -> Machine {
    let cfg = SystemConfig::piranha_pn(2).scaled_to_chips(chips);
    Machine::new(cfg, &Workload::Oltp(OltpConfig::paper_default()))
}

/// Drive a small multi-chip run and return its engine counters.
fn run_tiny(workers: usize) -> (u64, ParsimStats) {
    let mut m = multichip(2);
    m.set_parallel_workers(workers);
    let r = m.run(2_000, 10_000);
    (r.fingerprint(), m.parsim_stats())
}

#[test]
fn train_batching_cuts_rendezvous_at_least_5x_below_windows() {
    let (_, stats) = run_tiny(1);
    assert!(
        stats.windows > 100,
        "a tiny multichip run should still execute many windows, got {}",
        stats.windows
    );
    // The fixed-quantum engine paid one rendezvous per window; the train
    // engine must pay at least 5x fewer (it pays 8x fewer by
    // construction: TRAIN_WINDOWS = 8).
    assert!(
        stats.rounds * 5 <= stats.windows,
        "{} rounds for {} windows is not a >= 5x rendezvous reduction",
        stats.rounds,
        stats.windows
    );
    // `run` drives two engine segments (warmup, then measure); each
    // pays at most one extra partial-train rendezvous at its end.
    let full_trains = stats.windows.div_ceil(piranha::parsim::TRAIN_WINDOWS);
    assert!(
        stats.rounds >= full_trains && stats.rounds <= full_trains + 1,
        "rounds ({}) must be the train count of {} windows (+1 per segment)",
        stats.rounds,
        stats.windows
    );
}

#[test]
fn engine_counters_are_a_function_of_the_simulation_not_the_schedule() {
    let (fp1, s1) = run_tiny(1);
    for workers in [2usize, 4] {
        let (fp, s) = run_tiny(workers);
        assert_eq!(fp, fp1, "fingerprint diverged at {workers} workers");
        assert_eq!(s, s1, "engine counters diverged at {workers} workers");
    }
    // Every window pops at least the event at its base time, so the
    // window count is bounded by the event count — the machine-level
    // O(events) guarantee that idle stretches are skipped, not spun
    // through quantum by quantum.
    assert!(s1.windows <= s1.events);
    assert!(s1.merged_events <= s1.events);
    assert!(s1.empty_windows <= s1.windows + 1);
}

#[test]
fn lookahead_degenerates_to_the_global_quantum_on_paper_configs() {
    // Table 1 glueless configs are fully connected: every pair is one
    // hop, so the matrix collapses to the fabric-wide minimum latency.
    let m = multichip(4);
    let la = m.lookahead();
    assert!(la.is_uniform(), "fully connected => uniform matrix");
    assert_eq!(la.quantum(), m.network().min_delivery_latency());
    assert_eq!(m.quantum(), la.quantum());
    for s in 0..4 {
        for d in 0..4 {
            if s != d {
                assert_eq!(la.bound(s, d), la.quantum());
            }
        }
    }
}

#[test]
fn dual_homed_io_nodes_get_wider_pair_bounds() {
    // 4 processing chips in a clique plus 2 I/O nodes, each dual-homed
    // to two processing chips: I/O <-> I/O traffic crosses 2 hops, so
    // its lookahead bound is twice the quantum — the per-pair matrix is
    // strictly stronger than the fabric-wide minimum here.
    let cfg = SystemConfig::piranha_pn(1)
        .scaled_to_chips(4)
        .with_io_nodes(2);
    let m = Machine::new(cfg, &Workload::Oltp(OltpConfig::paper_default()));
    let la = m.lookahead();
    assert!(!la.is_uniform(), "a dual-homed I/O topology is not uniform");
    let (io0, io1) = (4, 5);
    assert_eq!(la.bound(io0, io1), la.quantum().times(2));
    for p in 0..4 {
        assert!(la.bound(io0, p) <= la.quantum().times(2));
    }
    assert_eq!(la.min_into(io0), la.quantum(), "its home chips are 1 hop");
}

#[test]
fn parsim_counters_surface_through_probe_and_report() {
    let mut m = multichip(2);
    m.set_probe(Probe::new(ProbeConfig::default()));
    m.set_parallel_workers(2);
    let r = m.run(2_000, 10_000);
    let stats = m.parsim_stats();
    assert!(stats.rounds > 0 && stats.windows > 0);

    // Probe registry rows (sampled by finish_result -> sample_metrics).
    for (name, want) in [
        ("parsim.rounds", stats.rounds),
        ("parsim.windows", stats.windows),
        ("parsim.empty_windows", stats.empty_windows),
        ("parsim.merged_events", stats.merged_events),
        ("parsim.events", stats.events),
    ] {
        assert_eq!(
            r.metrics.get(name).and_then(|v| v.as_count()),
            Some(want),
            "metric {name} missing or wrong"
        );
    }

    // Per-lane barrier-stall histograms exist for every node when a
    // probe is attached and a parallel run happened.
    let snap = m.probe().metrics().expect("probe enabled");
    for n in 0..2 {
        let name = format!("parsim.node{n}.barrier_wait_ns");
        assert!(
            snap.get(&format!("{name}.count")).is_some() || snap.get(&name).is_some(),
            "histogram {name} was not registered"
        );
    }

    // Machine report carries the same counters.
    let report = m.report();
    assert_eq!(report.parsim, stats);
    let rows = report.to_metrics();
    assert_eq!(
        rows.get("parsim.rounds").and_then(|v| v.as_count()),
        Some(stats.rounds)
    );
    assert!(report.to_string().contains("parallel engine:"));
}

#[test]
fn serial_single_chip_machines_report_zero_rounds_but_real_events() {
    let cfg = SystemConfig::piranha_pn(2);
    let mut m = Machine::new(cfg, &Workload::Oltp(OltpConfig::paper_default()));
    m.run(1_000, 5_000);
    let stats = m.parsim_stats();
    assert_eq!(stats.rounds, 0);
    assert_eq!(stats.windows, 0);
    assert!(stats.events > 0, "the serial loop still counts its events");
}
