//! Acceptance tests for the parallel, memoizing experiment harness:
//! determinism of repeated runs, bit-identical figure outputs between
//! the serial and parallel paths, and (on multi-core hosts) the
//! wall-clock win.

use piranha::experiments::{self, Harness, RunPlan, RunScale};
use piranha::workloads::{OltpConfig, Workload};
use piranha::SystemConfig;

fn small() -> RunScale {
    RunScale::tiny()
}

/// Two `RunResult`s from the same tuple must agree on every statistic.
fn assert_results_identical(a: &piranha::RunResult, b: &piranha::RunResult) {
    assert_eq!(a.name, b.name);
    assert_eq!(a.window, b.window);
    assert_eq!(a.total_instrs(), b.total_instrs());
    assert_eq!(a.mem_page_hit_rate, b.mem_page_hit_rate);
    assert_eq!(a.cpus.len(), b.cpus.len());
    for (x, y) in a.cpus.iter().zip(&b.cpus) {
        assert_eq!(
            format!("{x:?}"),
            format!("{y:?}"),
            "per-CPU stats must match exactly"
        );
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let w = Workload::Oltp(OltpConfig::paper_default());
    let cfg = SystemConfig::piranha_pn(2);
    // Twice directly, on the calling thread.
    let a = experiments::run_config(cfg.clone(), &w, small());
    let b = experiments::run_config(cfg.clone(), &w, small());
    assert_results_identical(&a, &b);
    // Once more through the parallel harness (worker thread + cache).
    let mut plan = RunPlan::new();
    plan.add(cfg.clone(), w.clone(), small());
    plan.add(SystemConfig::ooo(), w.clone(), small());
    let mut h = Harness::with_threads(4);
    h.execute(&plan);
    let c = h.get(&cfg, &w, small());
    assert_results_identical(&a, &c);
}

#[test]
fn all_figures_bit_identical_to_serial_and_dedups() {
    let serial = experiments::all_figures_serial(small());
    let mut h = Harness::new();
    let parallel = experiments::all_figures_with(&mut h, small());
    assert_eq!(
        serial, parallel,
        "parallel memoized figures must be bit-identical"
    );
    // The shared cache must collapse the ~35 per-figure runs into the
    // unique configurations.
    let plan = experiments::all_figures_plan(small());
    assert_eq!(h.unique_runs(), plan.len());
    assert!(
        h.unique_runs() < 25,
        "cross-figure dedup: {} unique runs",
        h.unique_runs()
    );
    assert!(h.cache_hits() > 10, "figure assembly is served from cache");
}

/// The quick-scale acceptance run: ≥2x wall-clock win on a multi-core
/// host, bit-identical output everywhere. Several minutes in debug
/// builds, so opt-in: `cargo test --release -- --ignored`.
#[test]
#[ignore = "long: quick-scale full-evaluation comparison; run with --ignored (ideally --release)"]
fn all_figures_quick_parallel_speedup() {
    let scale = RunScale::quick();
    let t0 = std::time::Instant::now();
    let serial = experiments::all_figures_serial(scale);
    let t_serial = t0.elapsed();
    let t1 = std::time::Instant::now();
    let parallel = experiments::all_figures(scale);
    let t_parallel = t1.elapsed();
    assert_eq!(serial, parallel, "quick-scale figures bit-identical");
    let speedup = t_serial.as_secs_f64() / t_parallel.as_secs_f64().max(1e-9);
    eprintln!(
        "all_figures quick: serial {t_serial:?}, parallel+memoized {t_parallel:?} ({speedup:.2}x)"
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >=2x on a {cores}-core host, got {speedup:.2}x"
        );
    } else {
        // Single- or dual-core host: memoization alone must still win.
        assert!(
            speedup > 1.3,
            "memoization alone beats serial: {speedup:.2}x"
        );
    }
}
