//! Whole-chip coherence integration tests: the intra-chip protocol of
//! paper §2.3 exercised end-to-end through the event-driven machine.

use piranha::workloads::{SynthConfig, Workload};
use piranha::{Machine, SystemConfig};

fn quick(cfg: SystemConfig, w: &Workload, instrs: u64) -> Machine {
    let mut m = Machine::new(cfg, w);
    m.run_until_total(instrs);
    m
}

/// Heavy sharing on the 8-CPU chip never violates the single-writer /
/// dup-tag invariants, checked at several quiescent points.
#[test]
fn eight_cpu_sharing_invariants_hold_over_time() {
    let mut cfg = SystemConfig::piranha_p8();
    cfg.cpu_quantum = 500;
    let w = Workload::Synth(SynthConfig::heavy());
    let mut m = Machine::new(cfg, &w);
    for step in 1..=6u64 {
        m.run_until_total(step * 40_000);
        m.check_coherence();
    }
}

/// A write-heavy, tiny-shared-region configuration maximizes upgrade and
/// invalidation traffic; invariants must still hold.
#[test]
fn write_storm_on_hot_lines() {
    let w = Workload::Synth(SynthConfig {
        load_frac: 0.25,
        store_frac: 0.35,
        shared_frac: 0.8,
        shared_bytes: 4 * 1024, // 64 hot lines fought over by 8 CPUs
        ..SynthConfig::light()
    });
    let mut cfg = SystemConfig::piranha_p8();
    cfg.cpu_quantum = 300;
    let m = quick(cfg, &w, 200_000);
    m.check_coherence();
    let stats = m.cpu_stats();
    let fwd: u64 = stats.iter().map(|s| s.fills[1]).sum();
    assert!(
        fwd > 0,
        "hot-line contention must produce L1-to-L1 forwards"
    );
}

/// Figure-6(b) mechanism: with one CPU there are no forwards; with eight
/// CPUs on a shared footprint, forwards appear and L2 hits shrink.
#[test]
fn forward_fraction_grows_with_cpus() {
    let w = Workload::Synth(SynthConfig::heavy());
    let m1 = quick(SystemConfig::piranha_p1(), &w, 60_000);
    let m8 = quick(SystemConfig::piranha_p8(), &w, 240_000);
    let f = |m: &Machine| {
        let s = m.cpu_stats();
        let fwd: u64 = s.iter().map(|c| c.fills[1]).sum();
        let all: u64 = s.iter().map(|c| c.fills.iter().sum::<u64>()).sum();
        fwd as f64 / all.max(1) as f64
    };
    assert_eq!(f(&m1), 0.0, "a single CPU cannot forward to itself");
    assert!(f(&m8) > 0.05, "sharing CPUs forward: {}", f(&m8));
}

/// The non-inclusive L2 serves as a victim cache: private footprints
/// larger than L1 but smaller than L1+L2 stay on-chip.
#[test]
fn victim_caching_keeps_warm_footprint_on_chip() {
    // 96KB private per CPU: exceeds the 64KB dL1, fits L1+L2 share.
    let w = Workload::Synth(SynthConfig {
        private_bytes: 96 << 10,
        shared_frac: 0.0,
        load_frac: 0.3,
        store_frac: 0.1,
        ..SynthConfig::light()
    });
    let mut m = Machine::new(SystemConfig::piranha_p1(), &w);
    m.run(150_000, 100_000);
    let s = &m.cpu_stats()[0];
    let mem_frac = s.fills_l2_miss() as f64
        / (s.fills_l2_hit() + s.fills_l2_fwd() + s.fills_l2_miss()).max(1) as f64;
    assert!(
        mem_frac < 0.12,
        "warm 96KB footprint should be served on-chip, memory fraction {mem_frac}"
    );
}

/// All CPUs make forward progress under heavy contention (no starvation
/// from the pending-entry replay discipline).
#[test]
fn all_cpus_make_progress() {
    let m = quick(
        SystemConfig::piranha_p8(),
        &Workload::Synth(SynthConfig::heavy()),
        160_000,
    );
    for (i, s) in m.cpu_stats().iter().enumerate() {
        assert!(s.instrs > 5_000, "cpu {i} starved: {} instrs", s.instrs);
    }
}

/// The OOO chip (single CPU, unified L2) runs the same machinery.
#[test]
fn ooo_chip_coherence() {
    let m = quick(
        SystemConfig::ooo(),
        &Workload::Synth(SynthConfig::heavy()),
        80_000,
    );
    m.check_coherence();
}

/// Identical seeds give bit-identical executions; different seeds differ.
#[test]
fn determinism_and_seed_sensitivity() {
    let run = |seed: u64| {
        let mut cfg = SystemConfig::piranha_pn(4);
        cfg.seed = seed;
        let mut m = Machine::new(cfg, &Workload::Synth(SynthConfig::heavy()));
        let r = m.run(20_000, 60_000);
        (r.total_instrs(), r.window, m.now().as_ps())
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}

/// The `wh64`-heavy OLTP workload exercises exclusive-without-data
/// grants end to end.
#[test]
fn oltp_write_hints_complete() {
    use piranha::workloads::OltpConfig;
    let m = quick(
        SystemConfig::piranha_pn(2),
        &Workload::Oltp(OltpConfig::paper_default()),
        80_000,
    );
    m.check_coherence();
    let sb: u64 = m.cpu_stats().iter().map(|s| s.sb_reqs).sum();
    assert!(sb > 100, "store-buffer transactions flowed: {sb}");
}
