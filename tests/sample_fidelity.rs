//! Warming-fidelity property: functional warming must leave the machine
//! in exactly the architectural state a detailed run would — same cache
//! and TLB occupancy, same directory contents, same memory versions —
//! because a sampled run's detailed windows measure the state warming
//! built for them.
//!
//! The comparison is made *at stream completion* on a single-CPU
//! machine with a loads-only bounded workload (DSS — its own unit test
//! asserts the stream emits no stores). That construction makes the
//! property exact rather than approximate:
//!
//! * single CPU: no cross-CPU interleaving, so the retire order — and
//!   with it every miss, fill, LRU touch, and directory transition — is
//!   the same sequence in both regimes;
//! * loads only: no store-buffer drain whose coalescing could depend on
//!   timing;
//! * at completion: the warm engine advances in round-robin quanta and
//!   the detailed engine re-checks its stop condition only every few
//!   events, so mid-stream stops land on different instruction counts —
//!   completion is the one boundary both regimes hit exactly.
//!
//! The oracle is `Machine::arch_state_digest()`, a hash over sorted
//! occupancy state (L1/L2 tags, TLB pages, duplicate-tag rows,
//! directory entries, memory versions) that deliberately excludes all
//! timing.

use piranha_system::{Machine, SampleConfig, SystemConfig};
use piranha_workloads::{DssConfig, Workload};
use proptest::prelude::*;

/// A bounded, single-CPU DSS workload: `lines` table lines with `ipl`
/// predicate instructions each, over a `table_kb` KiB table.
fn bounded_dss(table_kb: u64, ipl: u64, lines: u64, sel_pct: u64) -> Workload {
    Workload::Dss(DssConfig {
        table_bytes: table_kb << 10,
        instrs_per_line: ipl,
        selectivity: sel_pct as f64 / 100.0,
        line_limit: lines,
        ..DssConfig::paper_default()
    })
}

/// An all-functional sampling plan: zero detailed windows, so the whole
/// stream is fast-forwarded through the warming path. Built literally
/// because `SampleConfig::new` insists on a non-degenerate window.
fn all_warm() -> SampleConfig {
    SampleConfig {
        warmup: 0,
        period: 10_000,
        detail_warmup: 0,
        window: 1,
        min_windows: 0,
        max_windows: 0,
        target_rel_ci: None,
    }
}

fn p1() -> SystemConfig {
    SystemConfig::piranha_p1()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// After running an arbitrary bounded loads-only workload to
    /// completion, the purely-functional regime leaves bit-identical
    /// architectural state to the detailed regime.
    #[test]
    fn functional_warming_matches_detailed_state(
        table_kb in 64u64..512,
        ipl in 4u64..40,
        lines in 40u64..400,
        sel_pct in 10u64..90,
    ) {
        let wl = bounded_dss(table_kb, ipl, lines, sel_pct);

        let mut detailed = Machine::new(p1(), &wl);
        detailed.run_to_completion();

        let mut warm = Machine::new(p1(), &wl);
        warm.run_sampled(&all_warm(), None);

        prop_assert_eq!(detailed.total_instrs(), warm.total_instrs());
        prop_assert_eq!(
            detailed.arch_state_digest(),
            warm.arch_state_digest()
        );
    }

    /// The same holds for a genuinely alternating sampled run (warming
    /// punctuated by detailed windows): mode switches at window
    /// boundaries must not perturb architectural state either.
    #[test]
    fn sampled_alternation_matches_detailed_state(
        table_kb in 64u64..512,
        ipl in 4u64..40,
        lines in 40u64..400,
    ) {
        let wl = bounded_dss(table_kb, ipl, lines, 55);

        let mut detailed = Machine::new(p1(), &wl);
        detailed.run_to_completion();

        let mut sampled = Machine::new(p1(), &wl);
        sampled.run_sampled(&SampleConfig::new(600, 60), None);

        prop_assert_eq!(detailed.total_instrs(), sampled.total_instrs());
        prop_assert_eq!(
            detailed.arch_state_digest(),
            sampled.arch_state_digest()
        );
    }
}

/// The oracle itself is non-trivial: different workloads must land on
/// different digests, or the equalities above prove nothing.
#[test]
fn digest_distinguishes_workloads() {
    let mut a = Machine::new(p1(), &bounded_dss(128, 8, 100, 55));
    a.run_to_completion();
    let mut b = Machine::new(p1(), &bounded_dss(256, 12, 150, 55));
    b.run_to_completion();
    assert_ne!(a.arch_state_digest(), b.arch_state_digest());
}
